package seccrypto

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Bundle is the plaintext content installed on a network processor: the
// processing binary, its monitoring graph, the secret 32-bit hash parameter
// (§3.1 "at programming time"), and the release manifest that versions the
// bundle against downgrade replays.
type Bundle struct {
	Manifest  Manifest
	Binary    []byte
	Graph     []byte
	HashParam uint32
}

// Marshal serializes a bundle for device-local storage (after
// verification). The wire form is always the encrypted Package.
func (b *Bundle) Marshal() []byte {
	return payloadBytes("", b)
}

// UnmarshalBundle parses a bundle stored with Bundle.Marshal.
func UnmarshalBundle(data []byte) (*Bundle, error) {
	_, b, err := parsePayload(data)
	return b, err
}

// Package is the envelope transmitted over the network to the router: the
// encrypted bundle, the wrapped session key, the operator signature over
// the plaintext, and the operator's certificate.
type Package struct {
	DeviceID   string
	Cert       *Certificate
	EncKey     []byte // AES session key wrapped to the device's K_R+
	IV         []byte
	EncPayload []byte // AES-256-CBC of the serialized bundle
	Signature  []byte // operator signature over the plaintext payload
}

// Verification and tampering error conditions (SR1–SR4 test hooks).
var (
	ErrBadCertificate = errors.New("seccrypto: certificate not issued by manufacturer")
	ErrBadSignature   = errors.New("seccrypto: package signature invalid")
	ErrWrongDevice    = errors.New("seccrypto: package not addressed to this device")
	ErrCorrupt        = errors.New("seccrypto: package corrupt")
)

// OpCounts records the cryptographic work a verification performed; the
// timing model (internal/timing) converts these into Nios II seconds for
// Table 2.
type OpCounts struct {
	DownloadBytes int // set by the transport
	RSAPrivateOps int // 2048-bit private-key exponentiations
	RSAPublicOps  int // 2048-bit public-key exponentiations (verify)
	SHA256Bytes   int // bytes digested
	AESBytes      int // bytes de/encrypted with AES
}

// Add accumulates counts.
func (c *OpCounts) Add(o OpCounts) {
	c.DownloadBytes += o.DownloadBytes
	c.RSAPrivateOps += o.RSAPrivateOps
	c.RSAPublicOps += o.RSAPublicOps
	c.SHA256Bytes += o.SHA256Bytes
	c.AESBytes += o.AESBytes
}

// payload serializes a bundle with its destination identity. Binding the
// device ID inside the signed plaintext (in addition to encrypting the
// session key to the device) hardens SR4 against envelope re-wrapping; the
// manifest rides inside the same signed region, so version and sequence
// cannot be stripped or rewritten without breaking the signature.
func payloadBytes(deviceID string, b *Bundle) []byte {
	var buf bytes.Buffer
	buf.WriteString("SDM2")
	writeBytes(&buf, []byte(deviceID))
	writeBytes(&buf, []byte(b.Manifest.AppName))
	writeBytes(&buf, []byte(b.Manifest.Version))
	var s [8]byte
	binary.BigEndian.PutUint64(s[:], b.Manifest.Sequence)
	buf.Write(s[:])
	writeBytes(&buf, b.Binary)
	writeBytes(&buf, b.Graph)
	var p [4]byte
	binary.BigEndian.PutUint32(p[:], b.HashParam)
	buf.Write(p[:])
	return buf.Bytes()
}

// parsePayload accepts both the current "SDM2" payload (with manifest) and
// the legacy "SDMP" form, which decodes with a zero manifest and therefore
// no replay protection.
func parsePayload(data []byte) (deviceID string, b *Bundle, err error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil ||
		(string(magic[:]) != "SDM2" && string(magic[:]) != "SDMP") {
		return "", nil, fmt.Errorf("%w: bad payload magic", ErrCorrupt)
	}
	versioned := string(magic[:]) == "SDM2"
	id, err := readBytes(r)
	if err != nil {
		return "", nil, fmt.Errorf("%w: device id: %v", ErrCorrupt, err)
	}
	var m Manifest
	if versioned {
		app, err := readBytes(r)
		if err != nil {
			return "", nil, fmt.Errorf("%w: manifest app: %v", ErrCorrupt, err)
		}
		ver, err := readBytes(r)
		if err != nil {
			return "", nil, fmt.Errorf("%w: manifest version: %v", ErrCorrupt, err)
		}
		if err := binary.Read(r, binary.BigEndian, &m.Sequence); err != nil {
			return "", nil, fmt.Errorf("%w: manifest sequence: %v", ErrCorrupt, err)
		}
		m.AppName, m.Version = string(app), string(ver)
	}
	bin, err := readBytes(r)
	if err != nil {
		return "", nil, fmt.Errorf("%w: binary: %v", ErrCorrupt, err)
	}
	graph, err := readBytes(r)
	if err != nil {
		return "", nil, fmt.Errorf("%w: graph: %v", ErrCorrupt, err)
	}
	var param uint32
	if err := binary.Read(r, binary.BigEndian, &param); err != nil {
		return "", nil, fmt.Errorf("%w: hash parameter: %v", ErrCorrupt, err)
	}
	if r.Len() != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, r.Len())
	}
	return string(id), &Bundle{Manifest: m, Binary: bin, Graph: graph, HashParam: param}, nil
}

// BuildPackage performs the operator's "at programming time" steps of §3.1:
// sign the (binary, graph, parameter) bundle, encrypt it under a fresh AES
// session key, and wrap that key to the destination router's public key.
func (o *Operator) BuildPackage(dev DevicePublic, b *Bundle, rng io.Reader) (*Package, error) {
	if o.cert == nil {
		return nil, fmt.Errorf("seccrypto: operator %q has no certificate", o.Name)
	}
	devPub, err := UnmarshalPublicKey(dev.KeyDER)
	if err != nil {
		return nil, err
	}
	plain := payloadBytes(dev.ID, b)
	sig, err := o.keys.sign(plain)
	if err != nil {
		return nil, err
	}
	key := make([]byte, 32)
	if _, err := io.ReadFull(rng, key); err != nil {
		return nil, fmt.Errorf("seccrypto: session key: %w", err)
	}
	iv := make([]byte, aes.BlockSize)
	if _, err := io.ReadFull(rng, iv); err != nil {
		return nil, fmt.Errorf("seccrypto: iv: %w", err)
	}
	encPayload, err := aesCBCEncrypt(key, iv, plain)
	if err != nil {
		return nil, err
	}
	encKey, err := encryptKeyTo(devPub, key, rng)
	if err != nil {
		return nil, err
	}
	return &Package{
		DeviceID:   dev.ID,
		Cert:       o.cert,
		EncKey:     encKey,
		IV:         iv,
		EncPayload: encPayload,
		Signature:  sig,
	}, nil
}

// OpenPackage performs the device-side steps of §3.1 in the prototype's
// order (Table 2): verify the manufacturer certificate, decrypt the AES
// session key with the router's private key, decrypt the payload, verify
// the operator signature, and check the device binding. It returns the
// bundle and the operation counts consumed by the timing model.
func (d *DeviceIdentity) OpenPackage(p *Package, skipCertCheck bool) (*Bundle, OpCounts, error) {
	var ops OpCounts
	if err := d.validate(); err != nil {
		return nil, ops, err
	}
	if p.Cert == nil {
		return nil, ops, fmt.Errorf("%w: missing certificate", ErrBadCertificate)
	}

	// Step: check manufacturer certificate of operator public key K_O+.
	if !skipCertCheck {
		body := certBody(p.Cert.Subject, p.Cert.KeyDER, p.Cert.Serial)
		ops.RSAPublicOps++
		ops.SHA256Bytes += len(body)
		if err := verify(d.mfr.Public(), body, p.Cert.Signature); err != nil {
			return nil, ops, fmt.Errorf("%w: %v", ErrBadCertificate, err)
		}
	}
	operatorPub, err := UnmarshalPublicKey(p.Cert.KeyDER)
	if err != nil {
		return nil, ops, fmt.Errorf("%w: %v", ErrBadCertificate, err)
	}

	// Step: decrypt AES key K_sym using router's private key K_R-.
	ops.RSAPrivateOps++
	key, err := d.key.decryptKey(p.EncKey)
	if err != nil {
		// OAEP failure here means the package was wrapped for a different
		// router: SR4.
		return nil, ops, fmt.Errorf("%w: %v", ErrWrongDevice, err)
	}

	// Step: decrypt package with AES key K_sym.
	ops.AESBytes += len(p.EncPayload)
	plain, err := aesCBCDecrypt(key, p.IV, p.EncPayload)
	if err != nil {
		return nil, ops, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	// Step: verify packet signature with operator's public key K_O+.
	ops.RSAPublicOps++
	ops.SHA256Bytes += len(plain)
	if err := verify(operatorPub, plain, p.Signature); err != nil {
		return nil, ops, fmt.Errorf("%w: %v", ErrBadSignature, err)
	}

	id, bundle, err := parsePayload(plain)
	if err != nil {
		return nil, ops, err
	}
	if id != d.ID {
		return nil, ops, fmt.Errorf("%w: payload addressed to %q, this device is %q",
			ErrWrongDevice, id, d.ID)
	}
	// Anti-downgrade: a fully verified package must still advance the
	// device's per-application sequence high-water mark. The check runs
	// last so crypto failures keep their specific errors, and the ledger
	// only ever advances on packages that passed every other check.
	if !bundle.Manifest.Zero() {
		if err := d.Sequences().Accept(bundle.Manifest.AppName, bundle.Manifest.Sequence); err != nil {
			return nil, ops, err
		}
	}
	return bundle, ops, nil
}

func aesCBCEncrypt(key, iv, plain []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: aes: %w", err)
	}
	// PKCS#7 padding.
	pad := aes.BlockSize - len(plain)%aes.BlockSize
	padded := make([]byte, len(plain)+pad)
	copy(padded, plain)
	for i := len(plain); i < len(padded); i++ {
		padded[i] = byte(pad)
	}
	out := make([]byte, len(padded))
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(out, padded)
	return out, nil
}

func aesCBCDecrypt(key, iv, enc []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: aes: %w", err)
	}
	if len(enc) == 0 || len(enc)%aes.BlockSize != 0 {
		return nil, fmt.Errorf("seccrypto: ciphertext length %d not a block multiple", len(enc))
	}
	if len(iv) != aes.BlockSize {
		return nil, fmt.Errorf("seccrypto: iv length %d", len(iv))
	}
	out := make([]byte, len(enc))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(out, enc)
	pad := int(out[len(out)-1])
	if pad < 1 || pad > aes.BlockSize || pad > len(out) {
		return nil, fmt.Errorf("seccrypto: bad padding")
	}
	for _, b := range out[len(out)-pad:] {
		if int(b) != pad {
			return nil, fmt.Errorf("seccrypto: bad padding")
		}
	}
	return out[:len(out)-pad], nil
}

// Marshal serializes the package for network transmission.
func (p *Package) Marshal() []byte {
	var b bytes.Buffer
	b.WriteString("SDMK")
	writeBytes(&b, []byte(p.DeviceID))
	writeBytes(&b, p.Cert.Marshal())
	writeBytes(&b, p.EncKey)
	writeBytes(&b, p.IV)
	writeBytes(&b, p.EncPayload)
	writeBytes(&b, p.Signature)
	return b.Bytes()
}

// UnmarshalPackage parses a package produced by Marshal.
func UnmarshalPackage(data []byte) (*Package, error) {
	r := bytes.NewReader(data)
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil || string(magic[:]) != "SDMK" {
		return nil, fmt.Errorf("%w: bad package magic", ErrCorrupt)
	}
	id, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("%w: device id: %v", ErrCorrupt, err)
	}
	certRaw, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("%w: certificate: %v", ErrCorrupt, err)
	}
	cert, err := UnmarshalCertificate(certRaw)
	if err != nil {
		return nil, fmt.Errorf("%w: certificate: %v", ErrCorrupt, err)
	}
	encKey, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("%w: session key: %v", ErrCorrupt, err)
	}
	iv, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("%w: iv: %v", ErrCorrupt, err)
	}
	encPayload, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorrupt, err)
	}
	sig, err := readBytes(r)
	if err != nil {
		return nil, fmt.Errorf("%w: signature: %v", ErrCorrupt, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.Len())
	}
	return &Package{DeviceID: string(id), Cert: cert, EncKey: encKey, IV: iv,
		EncPayload: encPayload, Signature: sig}, nil
}

// DigestHex is a convenience for logging package identities without
// dumping contents.
func (p *Package) DigestHex() string {
	d := sha256.Sum256(p.Marshal())
	return fmt.Sprintf("%x", d[:8])
}
