package seccrypto

import (
	"crypto/rand"
	"testing"
)

// Native fuzz targets (run with `go test -fuzz=FuzzX`; the seed corpus runs
// in every ordinary `go test`).

func FuzzUnmarshalPackage(f *testing.F) {
	fx := getFixture(nil)
	pkg, err := fx.op.BuildPackage(fx.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pkg.Marshal())
	f.Add([]byte("SDMK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPackage(data)
		if err != nil {
			return
		}
		// Accepted parses must re-marshal and never verify unless the
		// input was the genuine package.
		_ = p.Marshal()
		_, _, _ = fx.dev.OpenPackage(p, false)
	})
}

func FuzzUnmarshalCertificate(f *testing.F) {
	fx := getFixture(nil)
	f.Add(fx.op.Certificate().Marshal())
	f.Add([]byte("SDMC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCertificate(data)
		if err != nil {
			return
		}
		_ = c.Marshal()
	})
}

func FuzzUnmarshalBundle(f *testing.F) {
	f.Add(testBundle().Marshal())
	f.Add([]byte("SDMP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalBundle(data)
		if err != nil {
			return
		}
		_ = b.Marshal()
	})
}
