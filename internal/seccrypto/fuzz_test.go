package seccrypto

import (
	"crypto/rand"
	"testing"
)

// Native fuzz targets (run with `go test -fuzz=FuzzX`; the seed corpus runs
// in every ordinary `go test`).

func FuzzUnmarshalPackage(f *testing.F) {
	fx := getFixture(nil)
	pkg, err := fx.op.BuildPackage(fx.dev.PublicInfo(), testBundle(), rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(pkg.Marshal())
	f.Add([]byte("SDMK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPackage(data)
		if err != nil {
			return
		}
		// Accepted parses must re-marshal and never verify unless the
		// input was the genuine package.
		_ = p.Marshal()
		_, _, _ = fx.dev.OpenPackage(p, false)
	})
}

func FuzzUnmarshalCertificate(f *testing.F) {
	fx := getFixture(nil)
	f.Add(fx.op.Certificate().Marshal())
	f.Add([]byte("SDMC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCertificate(data)
		if err != nil {
			return
		}
		_ = c.Marshal()
	})
}

func FuzzUnmarshalBundle(f *testing.F) {
	f.Add(testBundle().Marshal())
	f.Add(versionedBundle("fuzz-app", "1.2.3", 42).Marshal()) // SDM2 form
	f.Add([]byte("SDMP"))
	f.Add([]byte("SDM2"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalBundle(data)
		if err != nil {
			return
		}
		// Accepted parses must re-encode losslessly: manifest included.
		back, err := UnmarshalBundle(b.Marshal())
		if err != nil {
			t.Fatalf("re-parse of accepted bundle failed: %v", err)
		}
		if back.Manifest != b.Manifest {
			t.Fatalf("manifest not stable across re-encode: %v != %v", back.Manifest, b.Manifest)
		}
	})
}

func FuzzUnmarshalSequenceLedger(f *testing.F) {
	l := NewSequenceLedger()
	_ = l.Accept("fw", 7)
	_ = l.Accept("acl", 123456789)
	f.Add(l.Marshal())
	f.Add(NewSequenceLedger().Marshal())
	f.Add([]byte("SDMS"))
	f.Add([]byte("SDMS\xFF\xFF\xFF\xFF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := UnmarshalSequenceLedger(data)
		if err != nil {
			return
		}
		// Accepted ledgers round-trip deterministically and stay functional.
		again, err := UnmarshalSequenceLedger(parsed.Marshal())
		if err != nil {
			t.Fatalf("re-parse of accepted ledger failed: %v", err)
		}
		_ = again.Accept("fuzz-probe", again.HighWater("fuzz-probe")+1)
	})
}

// FuzzManifestMutation mutates the signed payload plaintext around the
// manifest region and re-encrypts it with a correctly wrapped session key:
// no mutation may verify against the original signature, and none may
// advance the device's sequence ledger.
func FuzzManifestMutation(f *testing.F) {
	fx := getFixture(nil)
	bundle := versionedBundle("fmm-app", "1.0.0", 5)
	pkg, err := fx.op.BuildPackage(fx.dev2.PublicInfo(), bundle, rand.Reader)
	if err != nil {
		f.Fatal(err)
	}
	devPub, err := UnmarshalPublicKey(fx.dev2.PublicInfo().KeyDER)
	if err != nil {
		f.Fatal(err)
	}
	plain := payloadBytes(fx.dev2.ID, bundle)
	f.Add(10, byte(0x01)) // app-name region
	f.Add(30, byte(0x80)) // sequence region
	f.Add(0, byte(0xFF))  // magic
	f.Fuzz(func(t *testing.T, off int, flip byte) {
		if flip == 0 {
			return // identity mutation: the genuine payload would verify
		}
		mutated := append([]byte(nil), plain...)
		mutated[((off%len(mutated))+len(mutated))%len(mutated)] ^= flip

		key := make([]byte, 32)
		iv := make([]byte, 16)
		encPayload, err := aesCBCEncrypt(key, iv, mutated)
		if err != nil {
			t.Fatal(err)
		}
		encKey, err := encryptKeyTo(devPub, key, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		forged := &Package{DeviceID: pkg.DeviceID, Cert: pkg.Cert, EncKey: encKey,
			IV: iv, EncPayload: encPayload, Signature: pkg.Signature}
		before := fx.dev2.Sequences().HighWater("fmm-app")
		if _, _, err := fx.dev2.OpenPackage(forged, false); err == nil {
			t.Fatal("mutated signed payload verified")
		}
		if after := fx.dev2.Sequences().HighWater("fmm-app"); after != before {
			t.Fatalf("mutation advanced the ledger: %d -> %d", before, after)
		}
	})
}
