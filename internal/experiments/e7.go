package experiments

import (
	"errors"
	"fmt"
	"strings"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/seccrypto"
)

// E7 exercises the security requirements SR1–SR4 end to end with real
// cryptographic entities and reports pass/fail per check.
func E7() (string, error) {
	mfr, err := core.NewManufacturer("acme", nil)
	if err != nil {
		return "", err
	}
	evil, err := core.NewManufacturer("evil-fab", nil)
	if err != nil {
		return "", err
	}
	op, err := core.NewOperator("backbone-isp", nil)
	if err != nil {
		return "", err
	}
	if err := mfr.Certify(op); err != nil {
		return "", err
	}
	rogue, err := core.NewOperator("rogue", nil)
	if err != nil {
		return "", err
	}
	if err := evil.Certify(rogue); err != nil {
		return "", err
	}
	cfg := core.DeviceConfig{Cores: 1, MonitorsEnabled: true}
	dev0, err := mfr.Manufacture("router-0", cfg)
	if err != nil {
		return "", err
	}
	dev1, err := mfr.Manufacture("router-1", cfg)
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("E7: security requirements SR1-SR4 (real RSA-2048/AES-256 pipeline)\n")
	check := func(name string, pass bool, detail string) {
		status := "PASS"
		if !pass {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "  [%s] %-52s %s\n", status, name, detail)
	}

	// Honest path.
	wire, err := op.ProgramWire(dev0.Public(), apps.IPv4CM())
	if err != nil {
		return "", err
	}
	_, err = dev0.Install(wire)
	check("honest package installs", err == nil, fmt.Sprintf("err=%v", err))

	// SR1a: rogue operator rejected.
	rw, err := rogue.ProgramWire(dev0.Public(), apps.IPv4CM())
	if err != nil {
		return "", err
	}
	_, err = dev0.Install(rw)
	check("SR1: rogue operator certificate rejected",
		errors.Is(err, seccrypto.ErrBadCertificate), fmt.Sprintf("err=%v", err))

	// SR1b: tampered payload rejected.
	tam := append([]byte(nil), wire...)
	tam[len(tam)/2] ^= 1
	_, err = dev0.Install(tam)
	check("SR1: tampered package rejected", err != nil, fmt.Sprintf("err=%v", err))

	// SR3: confidentiality — no plaintext on the wire.
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		return "", err
	}
	bin := prog.Serialize()
	leak := false
	for i := 0; i+32 <= len(bin); i += 512 {
		if strings.Contains(string(wire), string(bin[i:i+32])) {
			leak = true
		}
	}
	check("SR3: binary fragments not visible on the wire", !leak, "")

	// SR4: cross-device rejection.
	_, err = dev1.Install(wire)
	check("SR4: package bound to one device",
		errors.Is(err, seccrypto.ErrWrongDevice), fmt.Sprintf("err=%v", err))

	// SR2: fresh parameters per programming.
	b1, err := op.PrepareBundle(apps.IPv4CM())
	if err != nil {
		return "", err
	}
	b2, err := op.PrepareBundle(apps.IPv4CM())
	if err != nil {
		return "", err
	}
	check("SR2: per-programming hash parameters differ", b1.HashParam != b2.HashParam,
		fmt.Sprintf("p1=%08x p2=%08x", b1.HashParam, b2.HashParam))

	return sb.String(), nil
}
