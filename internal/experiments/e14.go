package experiments

import (
	"fmt"
	"strings"

	"sdmmon/internal/fleet"
)

// E14 is the hierarchical control-plane extension: wave-based hash-parameter
// rotation rollouts (canary → 1% → 25% → 100%) across fleets of simulated
// routers, swept over fleet size and management-link loss. Makespan is the
// largest per-group virtual link clock at completion — groups deliver
// concurrently, so it tracks the slowest group, not the fleet size.
func E14(seed int64) (string, error) {
	var sb strings.Builder
	sb.WriteString("E14 (extension): fleet rotation rollout makespan (virtual link-seconds)\n")
	sb.WriteString("  routers  groups   loss   makespan(s)   attempts   attempts/router\n")
	for _, n := range []int{100, 300, 1000} {
		for _, drop := range []float64{0, 0.05, 0.15} {
			m, err := fleet.MeasureRollout(n, drop, seed)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  %7d  %6d   %3.0f%%   %11.2f   %8d   %15.2f\n",
				m.Routers, m.Groups, m.DropRate*100, m.MakespanSeconds,
				m.TotalAttempts, m.AttemptsPerRouter)
		}
	}
	sb.WriteString("  every rollout ends with pairwise-distinct hash parameters; loss inflates\n")
	sb.WriteString("  attempts/router and backoff time but never the outcome (retry + checksum).\n")
	return sb.String(), nil
}
