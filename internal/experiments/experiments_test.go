package experiments

import (
	"strings"
	"testing"
)

func TestTable1Driver(t *testing.T) {
	s, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "Nios II", "NP core", "one third"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestTable2Driver(t *testing.T) {
	s, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"prototype-scale", "actual bundle scale", "Decrypt AES key", "Total"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestTable3Driver(t *testing.T) {
	s, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "Merkle") || !strings.Contains(s, "Bitcount") {
		t.Errorf("missing rows:\n%s", s)
	}
}

func TestFigure6Driver(t *testing.T) {
	s := Figure6(60, 1)
	for _, want := range []string{"Figure 6", "inHD", "collision rate", "parameter sensitivity"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestE5Driver(t *testing.T) {
	s := E5(2000, 2)
	if !strings.Contains(s, "E5") || !strings.Contains(s, "0.06") {
		t.Errorf("E5 output unexpected:\n%s", s)
	}
}

func TestE6Driver(t *testing.T) {
	s, err := E6(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"homogeneous", "diverse", "s-box", "transfer probability"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestE8Driver(t *testing.T) {
	s, err := E8(30, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "false alarms: 0") {
		t.Errorf("benign false alarms:\n%s", s)
	}
	if !strings.Contains(s, "detected: 20") {
		t.Errorf("not all attacks detected:\n%s", s)
	}
}

func TestE9Driver(t *testing.T) {
	s, err := E9(3, 250, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase 1", "phase 3", "reprogrammings", "false alarms: 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestE10Driver(t *testing.T) {
	s := E10()
	if !strings.Contains(s, "shape held in 10/10") {
		t.Errorf("E10 robustness failed:\n%s", s)
	}
	if !strings.Contains(s, "the check has teeth") {
		t.Errorf("E10 missing vacuity check:\n%s", s)
	}
}

func TestE11Driver(t *testing.T) {
	s, err := E11(6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "marked%") || !strings.Contains(s, "taildrop%") {
		t.Errorf("E11 malformed:\n%s", s)
	}
	// The highest load row must show marking.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	last := lines[len(lines)-2]
	if strings.Contains(last, "   0.0%   ") {
		t.Errorf("no marking at the highest load:\n%s", s)
	}
}

func TestE12Driver(t *testing.T) {
	s, err := E12(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"probe cost", "sum compression", "s-box compression, 8-bit", "2^W"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestE13Driver(t *testing.T) {
	s, err := E13(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"switch to ipv4cm", "µs", "secure install"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

// E7 generates five RSA-2048 keys; keep it in the long bucket but verify it
// end to end once.
func TestE7Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA keygen heavy")
	}
	s, err := E7()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s, "FAIL") {
		t.Errorf("E7 has failing checks:\n%s", s)
	}
	for _, want := range []string{"SR1", "SR2", "SR3", "SR4"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q", want)
		}
	}
}
