package experiments

import (
	"fmt"
	"strings"

	"sdmmon/internal/campaign"
)

// e15Seeds is the seed-sweep width of the detection-latency tables.
const e15Seeds = 16

// E15 is the adversarial-campaign extension: mutation-driven attack
// campaigns (gadget chains, budgeted collision search, slow-drip duty
// titration, NoC burst shaping, baseline poisoning) run against the live
// monitored plane, and the detection latency — packets admitted before the
// classifier reaches each family's detection level — is reported as a
// distribution over a seed sweep. A fleet drill then prices the collision
// family's one cracked parameter before and after a hash-parameter
// rotation.
func E15(seed int64) (string, error) {
	var sb strings.Builder
	sb.WriteString("E15 (extension): adversarial campaign corpus — detection-latency distributions\n")
	fmt.Fprintf(&sb, "  family      detected    p50 pkts   p99 pkts   min–max pkts   mean evasion depth\n")
	for _, family := range campaign.Families() {
		d, err := campaign.MeasureDetection(family, e15Seeds, seed)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "  %-10s   %2d/%-2d    %8d   %8d   %6d–%-6d   %14.1f\n",
			family, d.Detected, d.Runs, d.P50, d.P99, d.Min, d.Max, d.MeanEvasionDepth)
	}
	sb.WriteString("  (latencies are schedule-dominated: the FSM escalates on the first tick whose\n")
	sb.WriteString("  realized attack rate crosses a threshold, so families with fixed ramps detect\n")
	sb.WriteString("  at near-constant packet counts; undetected collision runs are quiet wins —\n")
	sb.WriteString("  the search collided before one full attack tick of probing.)\n\n")

	sb.WriteString("  fleet evasion drill: crack one router, replay fleet-wide, rotate, replay\n")
	d, err := campaign.CollisionFleetDrill(campaign.FleetDrillConfig{Seed: seed})
	if err != nil {
		return "", err
	}
	if err := d.Check(); err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "    crack cost: %d probes (budget %d), %d monitored cycles\n",
		d.CrackAttempts, d.ProbeBudget, d.CrackCycles)
	fmt.Fprintf(&sb, "    variant transfer: pre-rotation %d/%d routers, post-rotation %d/%d\n",
		d.PreTransfer, d.Routers, d.PostTransfer, d.Routers)
	fmt.Fprintf(&sb, "    post-rotation re-crack cost per router: p50=%d p99=%d probes (%d exhausted)\n",
		d.SearchP50, d.SearchP99, d.SearchExhausted)
	sb.WriteString("  reading: a homogeneous fleet falls to one collision; rotation forces the\n")
	sb.WriteString("  attacker to re-pay the search cost per router under an already-alerted plane.\n")
	return sb.String(), nil
}
