// Package experiments regenerates every quantitative artifact of the
// paper's evaluation — Tables 1–3 and Figure 6 — plus the experiments
// (E5–E8) that quantify claims the paper makes in prose. The cmd/experiments
// binary and the repository-level benchmarks are thin wrappers around this
// package; EXPERIMENTS.md records its output.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/fpga"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
	"sdmmon/internal/timing"
)

// Table1 regenerates "Table 1: Resource use on DE4 FPGA".
func Table1() (string, error) {
	rows, err := fpga.Table1(fpga.DefaultMonitorConfig())
	if err != nil {
		return "", err
	}
	out := fpga.RenderRows("Table 1: Resource use on DE4 FPGA (model vs paper)", rows)
	ratio, err := fpga.ControlToNPRatio(fpga.DefaultMonitorConfig())
	if err != nil {
		return "", err
	}
	cores, err := fpga.MaxCoresOnDevice(fpga.DefaultMonitorConfig())
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("\ncontrol-processor / NP-core LUT ratio: %.2f (paper: \"about one third\")\n", ratio)
	out += fmt.Sprintf("extension: monitored NP cores fitting on the DE4 beside one control processor: %d\n", cores)
	return out, nil
}

// Table2 regenerates "Table 2: Processing of security functions on Nios II"
// at the prototype's package scale and, for contrast, at the scale of our
// actual IPv4+CM bundle.
func Table2() (string, error) {
	m := timing.NiosIIPrototype()
	out := timing.Render("Table 2: security-function processing on the Nios II model (prototype-scale ~2MB package)",
		m.Table2(timing.PrototypePackageInput()))

	// Actual bundle scale: assemble the real app and size its package
	// parts (binary + graph + overheads) without the RSA cost of building
	// a full package.
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		return "", err
	}
	h := mhash.NewMerkle(0xC0DE1234)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		return "", err
	}
	payload := len(prog.Serialize()) + len(g.Serialize()) + 64
	in := timing.Table2Input{
		WireBytes:     payload + 1200,
		CertBodyBytes: 300,
		PayloadBytes:  payload,
		PlainBytes:    payload,
	}
	out += "\n" + timing.Render(
		fmt.Sprintf("Table 2 at our actual bundle scale (%d-byte payload; RSA/process overheads dominate)", payload),
		m.Table2(in))
	return out, nil
}

// Table3 regenerates "Table 3: Implementation cost of hash functions" from
// live gate-level synthesis + technology mapping, plus the §4.3 cycle-time
// check.
func Table3() (string, error) {
	rows, err := fpga.Table3()
	if err != nil {
		return "", err
	}
	out := fpga.RenderRows("Table 3: hash-unit implementation cost (live techmap vs paper)", rows)
	timing, err := fpga.HashUnitTiming()
	if err != nil {
		return "", err
	}
	out += "\n§4.3 cycle-time check (first-order STA):\n"
	for _, r := range timing {
		out += "  " + r.String() + "\n"
	}
	return out, nil
}

// Figure6 regenerates the Hamming-distance distribution experiment.
func Figure6(pairsPerDistance int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	mk := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	pd := mhash.HammingDistribution(mk, pairsPerDistance, rng)

	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 6: output-HD distribution per input HD (Merkle sum tree, %d pairs/distance)\n", pairsPerDistance)
	sb.WriteString(pd.Table())
	ref := mhash.ReferenceBinomial(4)
	fmt.Fprintf(&sb, "ideal random reference: p = %.4f %.4f %.4f %.4f %.4f (mean 2.000)\n",
		ref[0], ref[1], ref[2], ref[3], ref[4])
	sb.WriteString("\npaper's reading: Gaussian-like, indistinguishable from random except input HD 1.\n")
	sb.WriteString("reproduction finding: the sum-compression tree also deviates at extreme input HDs\n")
	sb.WriteString("(e.g. HD 32 forces an even hash delta); random-pair sampling hides this at HD≈16.\n")

	// Collision / sensitivity summary.
	fmt.Fprintf(&sb, "\ncollision rate (random pairs, random params): %.4f (ideal 0.0625)\n",
		mhash.CollisionRate(mk, 40000, rng))
	fmt.Fprintf(&sb, "parameter sensitivity P[h_p1(x) == h_p2(x)]:   %.4f (ideal 0.0625)\n",
		mhash.ParameterSensitivity(mk, 40000, rng))
	return sb.String()
}

// E5 measures the geometric escape probability of §2.1.
func E5(trials int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	mk := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	probs := mhash.EscapeProbability(mk, 4, trials, rng)
	var sb strings.Builder
	sb.WriteString("E5: escape probability of a k-instruction attack (paper §2.1: 16^-k)\n")
	sb.WriteString("  k   measured     theory\n")
	for k := 1; k < len(probs); k++ {
		fmt.Fprintf(&sb, "  %d   %.6f   %.6f\n", k, probs[k], math.Pow(16, -float64(k)))
	}
	return sb.String()
}

// E6 runs the fleet cascade-containment experiment, including the
// compression-function ablation and the collapse finding.
func E6(fleetSize int, seed int64) (string, error) {
	var sb strings.Builder
	sb.WriteString("E6: homogeneity / cascade containment (persistent-corruption attack replayed fleet-wide)\n")
	type cfg struct {
		name        string
		diverse     bool
		compression mhash.Compress
	}
	for _, c := range []cfg{
		{"homogeneous fleet, sum compression (paper's warning case)", false, nil},
		{"diverse parameters, sum compression (paper's fix, faithful)", true, nil},
		{"diverse parameters, s-box compression (hardened variant)", true, mhash.SBoxCompress()},
	} {
		f, err := network.NewFleet(network.FleetConfig{
			Size: fleetSize, DiverseParams: c.diverse, Compression: c.compression, Seed: seed,
		})
		if err != nil {
			return "", err
		}
		res, err := f.Cascade()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "  %-58s engineered=%v compromised=%d/%d detected=%d\n",
			c.name, res.Engineered, res.Compromised, res.Fleet, res.Detected)
	}
	sumT := attack.TransferProbability(func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }, 4000, seed)
	boxT := attack.TransferProbability(func(p uint32) mhash.Hasher {
		h, _ := mhash.NewMerkleWith(p, 4, mhash.SBoxCompress())
		return h
	}, 4000, seed+1)
	fmt.Fprintf(&sb, "  analytic transfer probability: sum=%.3f (collapse finding), s-box=%.3f (≈1/16)\n", sumT, boxT)
	sb.WriteString("  finding: with the paper's arithmetic-sum compression, hash equality is\n")
	sb.WriteString("  parameter-independent — SR2's diversity does not contain engineered attacks;\n")
	sb.WriteString("  a nonlinear compression restores the intended containment.\n")
	return sb.String(), nil
}

// E9 is the dynamics extension experiment: a workload manager rebalances a
// multicore NP across traffic classes at runtime, with every reprogramming
// drawing a fresh hash parameter; monitors must stay quiet throughout.
func E9(cores, packetsPerPhase int, seed int64) (string, error) {
	np, err := npu.New(npu.Config{Cores: cores, MonitorsEnabled: true})
	if err != nil {
		return "", err
	}
	m, err := network.NewWorkloadManager(np, network.DefaultClasses(), 200, seed)
	if err != nil {
		return "", err
	}
	gen := packet.NewGenerator(seed)
	var sb strings.Builder
	sb.WriteString("E9 (extension): dynamic multicore workload management under traffic shift\n")
	for phase, udpShare := range []float64{0.1, 0.9, 0.3} {
		gen.UDPShare = udpShare
		for i := 0; i < packetsPerPhase; i++ {
			if _, err := m.Process(gen.Next(), 0); err != nil {
				return "", err
			}
		}
		asg := m.Assignment()
		counts := map[string]int{}
		for _, a := range asg {
			counts[a]++
		}
		fmt.Fprintf(&sb, "  phase %d (udp share %.0f%%): cores %v\n", phase+1, udpShare*100, counts)
	}
	s := np.Stats()
	fmt.Fprintf(&sb, "  reprogrammings: %d, distinct hash parameters: %d (every install re-keyed)\n",
		m.Reprograms, m.FreshParameters())
	fmt.Fprintf(&sb, "  packets: %d, false alarms: %d, fallback-routed: %d\n",
		s.Processed, s.Alarms, m.Fallback)
	return sb.String(), nil
}

// E12 quantifies §3.2's brute-force claim: the expected number of probe
// packets an attacker needs to push a one-instruction persistent-corruption
// attack past the monitor, measured against live monitored cores with
// hidden parameters, across compression functions and hash widths.
func E12(victims int, seed int64) (string, error) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		return "", err
	}
	smash := attack.DefaultSmash()
	rng := rand.New(rand.NewSource(seed))

	measure := func(mk func(uint32) mhash.Hasher) (mean float64, ok int, err error) {
		total := 0
		for i := 0; i < victims; i++ {
			oracle, err := attack.NewNPOracle(prog, mk, rng.Uint32())
			if err != nil {
				return 0, 0, err
			}
			res, err := smash.BruteForcePersist(oracle.Probe, 4000)
			if err != nil {
				return 0, 0, err
			}
			if res.Succeeded {
				ok++
				total += res.Probes
			}
		}
		if ok == 0 {
			return 0, 0, nil
		}
		return float64(total) / float64(ok), ok, nil
	}

	var sb strings.Builder
	sb.WriteString("E12 (extension): probe cost of brute-forcing a 1-instruction attack (§3.2)\n")
	sb.WriteString("  configuration                         mean probes  success  analytic E[probes]\n")
	type cfg struct {
		name  string
		mk    func(uint32) mhash.Hasher
		width int
	}
	cfgs := []cfg{
		{"sum compression, 4-bit (paper)", func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }, 4},
		{"s-box compression, 4-bit", func(p uint32) mhash.Hasher {
			h, _ := mhash.NewMerkleWith(p, 4, mhash.SBoxCompress())
			return h
		}, 4},
		{"s-box compression, 8-bit", func(p uint32) mhash.Hasher {
			h, _ := mhash.NewMerkleWith(p, 8, mhash.SumCompress(8))
			return h
		}, 8},
	}
	for _, c := range cfgs {
		mean, ok, err := measure(c.mk)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "  %-36s  %10.1f  %3d/%2d   %14.0f\n",
			c.name, mean, ok, victims, attack.ExpectedProbes(c.width, 1))
	}
	sb.WriteString("  reading: one-instruction attacks cost only ~2^W probes — the geometric\n")
	sb.WriteString("  argument protects multi-instruction sequences; short state-corruption\n")
	sb.WriteString("  attacks need wider hashes (or write-protected state) to resist probing.\n")
	return sb.String(), nil
}

// E13 quantifies §4.2's parenthetical: switching between resident
// applications is fast enough for dynamic workloads, in contrast to the
// ~25 s secure installation. Both numbers come from the same device model.
func E13(seed int64) (string, error) {
	np, err := npu.New(npu.Config{Cores: 2, MonitorsEnabled: true})
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(seed))
	list := []*apps.App{apps.IPv4CM(), apps.UDPEcho(), apps.Counter(), apps.ACL()}
	for _, app := range list {
		if err := np.LoadLibraryApp(app, rng.Uint32()); err != nil {
			return "", err
		}
	}
	var sb strings.Builder
	sb.WriteString("E13 (extension): resident-application switching vs secure installation (§4.2)\n")
	model := timing.NiosIIPrototype()
	install := model.Table2(timing.PrototypePackageInput())
	var installS float64
	for _, s := range install {
		if s.Name == "Total" {
			installS = s.Seconds
		}
	}
	gen := packet.NewGenerator(seed)
	for _, app := range list {
		cycles, err := np.Switch(0, app.Name)
		if err != nil {
			return "", err
		}
		// Prove the switch took: run traffic alarm-free.
		for i := 0; i < 50; i++ {
			res, err := np.ProcessOn(0, gen.Next(), 0)
			if err != nil {
				return "", err
			}
			if res.Detected {
				return "", fmt.Errorf("false alarm after switch to %s", app.Name)
			}
		}
		switchS := float64(cycles) / 100e6
		fmt.Fprintf(&sb, "  switch to %-9s %5d cycles = %8.2f µs   (vs %.1f s secure install, %.0fx)\n",
			app.Name+":", cycles, switchS*1e6, installS, installS/switchS)
	}
	sb.WriteString("  resident switching accommodates per-epoch workload changes; the secure\n")
	sb.WriteString("  installation path is only needed when new code enters the device.\n")
	return sb.String(), nil
}

// E11 is the congestion-management extension: the NP runs behind a real
// ingress queue in virtual time, so IPv4+CM's ECN marking is driven by the
// actual backlog. Sweeping the offered load shows the marking/drop onset.
func E11(seed int64) (string, error) {
	var sb strings.Builder
	sb.WriteString("E11 (extension): IPv4+CM behind a real ingress queue (1 core)\n")
	sb.WriteString("  inter-arrival  util   avgQ   maxQ   marked%   taildrop%\n")
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		return "", err
	}
	for _, ia := range []float64{400, 160, 100, 60, 40, 25} {
		np, err := npu.New(npu.Config{Cores: 1, MonitorsEnabled: true})
		if err != nil {
			return "", err
		}
		h := mhash.NewMerkle(0xE11)
		g, err := monitor.Extract(prog, h)
		if err != nil {
			return "", err
		}
		if err := np.InstallAll("ipv4cm", prog.Serialize(), g.Serialize(), 0xE11); err != nil {
			return "", err
		}
		gen := packet.NewGenerator(seed)
		q := &npu.QueueSim{NP: np, Capacity: 64, MeanInterArrival: ia, Seed: seed}
		st, err := q.Run(3000, gen.Next)
		if err != nil {
			return "", err
		}
		util := st.Utilization(1) * 100
		markPct, dropPct := 0.0, 0.0
		if st.Forwarded > 0 {
			markPct = 100 * float64(st.ECNMarked) / float64(st.Forwarded)
		}
		if st.Arrived > 0 {
			dropPct = 100 * float64(st.TailDrops) / float64(st.Arrived)
		}
		fmt.Fprintf(&sb, "  %8.0f cyc  %4.0f%%  %5.1f  %5d  %7.1f%%  %8.1f%%\n",
			ia, util, st.AvgQueue, st.MaxQueue, markPct, dropPct)
	}
	sb.WriteString("  (marking begins once the backlog crosses the CM threshold of 32; tail drops at 64)\n")
	return sb.String(), nil
}

// E10 is the model-robustness experiment: the Table 2 shape claims must
// survive ±20% perturbation of every cost constant (and must break under
// extreme perturbation, proving the check is not vacuous).
func E10() string {
	var sb strings.Builder
	sb.WriteString("E10 (extension): Table 2 cost-model sensitivity\n")
	in := timing.PrototypePackageInput()
	rows := timing.SensitivityAnalysis(timing.NiosIIPrototype(), 0.20, in)
	held := 0
	for _, r := range rows {
		if r.ShapeHeld {
			held++
		}
	}
	fmt.Fprintf(&sb, "  ±20%%: shape held in %d/%d single-constant perturbations\n", held, len(rows))
	sb.WriteString(indent(timing.RenderSensitivity(rows), "  "))
	extreme := timing.SensitivityAnalysis(timing.NiosIIPrototype(), 0.95, in)
	broke := 0
	for _, r := range extreme {
		if !r.ShapeHeld {
			broke++
		}
	}
	fmt.Fprintf(&sb, "  ±95%%: shape broke in %d/%d perturbations (the check has teeth)\n", broke, len(extreme))
	return sb.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// E8 measures end-to-end detection: benign traffic alarm-free, attacks
// detected, and the detection-latency distribution in attacker
// instructions.
func E8(benign, attacks int, seed int64) (string, error) {
	f, err := network.NewFleet(network.FleetConfig{Size: 1, DiverseParams: true, Seed: seed})
	if err != nil {
		return "", err
	}
	falseAlarms, err := f.RunTraffic(benign, seed+1)
	if err != nil {
		return "", err
	}

	// Detection latency: attacker instructions retired before the alarm,
	// measured over fresh parameters.
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		return "", err
	}
	smash := attack.DefaultSmash()
	hijack, err := smash.HijackPayload()
	if err != nil {
		return "", err
	}
	rng := rand.New(rand.NewSource(seed + 2))
	latency := map[int]int{}
	detected := 0
	escaped := 0
	for i := 0; i < attacks; i++ {
		// Each attacker varies their code (random scratch setup ahead of
		// the hijack body), so the survival depth varies per §2.1's
		// geometric argument rather than being fixed by one code choice.
		code := []isa.Word{
			isa.EncodeI(isa.OpORI, isa.RegT6, isa.RegT6, uint16(rng.Uint32())),
			isa.EncodeI(isa.OpXORI, isa.RegT6, isa.RegT6, uint16(rng.Uint32())),
			isa.EncodeI(isa.OpANDI, isa.RegT6, isa.RegT6, uint16(rng.Uint32())),
		}
		code = append(code, hijack...)
		pkt, err := smash.CraftPacket(code)
		if err != nil {
			return "", err
		}
		h := mhash.NewMerkle(rng.Uint32())
		g, err := monitor.Extract(prog, h)
		if err != nil {
			return "", err
		}
		m, err := monitor.New(g, h)
		if err != nil {
			return "", err
		}
		core := apps.NewCore(prog)
		inAttack := 0
		core.Trace = func(pc uint32, w isa.Word) bool {
			if pc >= smash.CodeAddr() {
				inAttack++
			}
			return m.Observe(pc, w)
		}
		res := core.Process(pkt, 0)
		if res.Exc != nil && m.Alarmed() {
			detected++
			latency[inAttack]++
		} else if attack.Succeeded(res) {
			escaped++
		}
	}
	var sb strings.Builder
	sb.WriteString("E8: end-to-end detection of the data-plane stack-smash on IPv4+CM\n")
	fmt.Fprintf(&sb, "  benign packets: %d, false alarms: %d\n", benign, falseAlarms)
	fmt.Fprintf(&sb, "  attacks: %d, detected: %d, escaped: %d\n", attacks, detected, escaped)
	sb.WriteString("  detection latency (attacker instructions retired before alarm):\n")
	for k := 1; k <= 8; k++ {
		if latency[k] > 0 {
			fmt.Fprintf(&sb, "    %d instruction(s): %d  (theory: 16^-%d of attacks survive %d)\n",
				k, latency[k], k-1, k-1)
		}
	}
	return sb.String(), nil
}

// Figure6CSV writes the Figure 6 distribution to a CSV file for plotting.
func Figure6CSV(path string, pairsPerDistance int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	mk := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	pd := mhash.HammingDistribution(mk, pairsPerDistance, rng)
	return os.WriteFile(path, []byte(pd.CSV()), 0o644)
}
