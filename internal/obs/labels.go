package obs

// Tenant/instance label plumbing. Metric names in this package carry their
// labels inline (`np_packet_cycles{core="0"}`); multi-tenant callers build
// those names with Labeled and audit namespace isolation with
// Snapshot.FilterLabel — the leakage test in internal/tenant snapshots one
// tenant's label slice before and after driving another tenant's traffic
// and requires the two sub-snapshots to be byte-identical.

import (
	"strconv"
	"strings"
)

// Labeled builds a metric name with inline Prometheus-style labels:
// Labeled("np_alarms_total", "np", "lc0", "tenant", "a") →
// `np_alarms_total{np="lc0",tenant="a"}`. Pairs with an empty value are
// skipped, so a single-tenant caller passing an unset label gets the bare
// base name back and keeps its historical series names. kv must have even
// length; a trailing odd key is ignored. Values are quoted with
// strconv.Quote, so arbitrary tenant names cannot break the label syntax.
func Labeled(base string, kv ...string) string {
	var b strings.Builder
	wrote := false
	for i := 0; i+1 < len(kv); i += 2 {
		if kv[i+1] == "" {
			continue
		}
		if !wrote {
			b.WriteString(base)
			b.WriteByte('{')
			wrote = true
		} else {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(strconv.Quote(kv[i+1]))
	}
	if !wrote {
		return base
	}
	b.WriteByte('}')
	return b.String()
}

// HasLabel reports whether a metric name carries the inline label key="value".
func HasLabel(name, key, value string) bool {
	_, labels := splitName(name)
	if labels == "" {
		return false
	}
	want := key + "=" + strconv.Quote(value)
	for _, part := range strings.Split(labels, ",") {
		if part == want {
			return true
		}
	}
	return false
}

// FilterLabel returns the sub-snapshot of series carrying the inline label
// key="value" — one tenant's slice of a shared registry. The result is a
// deep copy; serializing it (encoding/json sorts map keys) gives a
// canonical byte string suitable for exact isolation comparisons.
func (s Snapshot) FilterLabel(key, value string) Snapshot {
	var out Snapshot
	for name, v := range s.Counters {
		if HasLabel(name, key, value) {
			if out.Counters == nil {
				out.Counters = map[string]uint64{}
			}
			out.Counters[name] = v
		}
	}
	for name, v := range s.Gauges {
		if HasLabel(name, key, value) {
			if out.Gauges == nil {
				out.Gauges = map[string]float64{}
			}
			out.Gauges[name] = v
		}
	}
	for name, h := range s.Histograms {
		if HasLabel(name, key, value) {
			if out.Histograms == nil {
				out.Histograms = map[string]HistogramSnapshot{}
			}
			out.Histograms[name] = HistogramSnapshot{
				Bounds: append([]float64(nil), h.Bounds...),
				Counts: append([]uint64(nil), h.Counts...),
				Count:  h.Count,
				Sum:    h.Sum,
			}
		}
	}
	return out
}
