package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// EventKind identifies one lifecycle transition of the monitored data plane.
type EventKind uint8

const (
	// EvAlarm: a hardware monitor flagged an instruction (attack detected);
	// PC is the alarm instruction address, Aux the packet's cycles.
	EvAlarm EventKind = iota + 1
	// EvFault: an architectural exception without a monitor alarm; Aux is
	// the packet's cycles.
	EvFault
	// EvWatchdog: the subset of faults that were cycle-budget exhaustions
	// (hung core); Aux is the cycle budget consumed.
	EvWatchdog
	// EvRecover: the §2.1 recovery sequence completed on the core (packet
	// dropped, registers cleared, monitor reset).
	EvRecover
	// EvQuarantine: the supervisor removed the core from dispatch.
	EvQuarantine
	// EvInstall: a destructive install made a bundle live on the core.
	EvInstall
	// EvStage: a bundle was prepared into the core's shadow slot.
	EvStage
	// EvCommit: the staged bundle was cut over at a packet boundary; Aux is
	// the cutover cost in cycles.
	EvCommit
	// EvRollback: the retained previous version was restored; Aux is the
	// cutover cost in cycles.
	EvRollback
	// EvAbort: a staged bundle was discarded without touching the live slot.
	EvAbort
	// EvBackpressure: a shard's ingress queue crossed its marking threshold
	// and admission control began CE-marking arrivals; Aux is the queue
	// depth at onset. Emitted on the edge, not per packet.
	EvBackpressure
	// EvFailover: a shard was removed from dispatch and its flows
	// rendezvous-rehashed to the surviving shards; Aux is the number of
	// queued packets shed as starved drops.
	EvFailover
	// EvThreatLevel: the threat classifier changed level; Aux packs the
	// transition as from<<32|to (internal/threat level ordinals).
	EvThreatLevel
	// EvThreatResponse: a graded threat response fired; Aux is the action
	// ordinal (internal/threat action enum).
	EvThreatResponse
	// EvIncident: the forensic capture unit persisted an incident record;
	// Aux is the incident ID.
	EvIncident
)

var eventKindNames = [...]string{
	EvAlarm:          "alarm",
	EvFault:          "fault",
	EvWatchdog:       "watchdog",
	EvRecover:        "recover",
	EvQuarantine:     "quarantine",
	EvInstall:        "install",
	EvStage:          "stage",
	EvCommit:         "commit",
	EvRollback:       "rollback",
	EvAbort:          "abort",
	EvBackpressure:   "backpressure",
	EvFailover:       "failover",
	EvThreatLevel:    "threat_level",
	EvThreatResponse: "threat_response",
	EvIncident:       "incident",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one fixed-size trace record. No pointers, no strings: writing an
// event never allocates, and a ring of them is a single contiguous block.
type Event struct {
	// Seq is the collector-global sequence number (total order across
	// cores).
	Seq  uint64
	Kind EventKind
	// Core is the core the event happened on.
	Core int32
	// PC is the program counter for alarm events, 0 otherwise.
	PC uint32
	// Aux carries a kind-specific quantity (cycles, cutover cost).
	Aux uint64
}

// EventRing is one core's fixed-capacity trace buffer. Writers never block
// on a full ring: the new event is dropped and counted, which bounds both
// memory and hot-path latency (the FireGuard design choice — telemetry must
// never stall the checking path). The mutex is uncontended in steady state
// (one writer per core) and guards only fixed-size state.
type EventRing struct {
	mu      sync.Mutex
	buf     []Event
	start   int // oldest buffered event
	n       int // buffered events
	core    int32
	seq     *atomic.Uint64
	dropped atomic.Uint64
}

// NewEventRing builds a standalone ring (outside a Collector) for tests and
// single-core tools; depth <= 0 selects DefaultRingDepth.
func NewEventRing(core, depth int) *EventRing {
	if depth <= 0 {
		depth = DefaultRingDepth
	}
	return &EventRing{buf: make([]Event, depth), core: int32(core), seq: &atomic.Uint64{}}
}

// Emit appends one event. When the ring is full the event is dropped and
// counted — the trace keeps its oldest records, and the drop counter tells
// the reader the window is incomplete. Nil-safe no-op; never allocates.
func (r *EventRing) Emit(kind EventKind, pc uint32, aux uint64) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	r.mu.Lock()
	if r.n == len(r.buf) {
		r.mu.Unlock()
		r.dropped.Add(1)
		return
	}
	i := r.start + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = Event{Seq: seq, Kind: kind, Core: r.core, PC: pc, Aux: aux}
	r.n++
	r.mu.Unlock()
}

// Len reports the number of buffered events.
func (r *EventRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped reports how many events were discarded because the ring was full.
func (r *EventRing) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Snapshot appends the buffered events (oldest first) to dst without
// clearing the ring.
func (r *EventRing) Snapshot(dst []Event) []Event {
	return r.copyOut(dst, false)
}

// Drain appends the buffered events (oldest first) to dst and empties the
// ring. The drop counter is preserved — it counts lifetime losses, not
// per-window ones.
func (r *EventRing) Drain(dst []Event) []Event {
	return r.copyOut(dst, true)
}

func (r *EventRing) copyOut(dst []Event, clear bool) []Event {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.n; i++ {
		j := r.start + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		dst = append(dst, r.buf[j])
	}
	if clear {
		r.start, r.n = 0, 0
	}
	return dst
}
