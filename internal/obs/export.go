package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// HistogramSnapshot is the exported form of one histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    float64  `json:"sum"`
}

// Snapshot is a point-in-time copy of every metric in a registry, plus the
// event-trace drop counter — the JSON export schema.
type Snapshot struct {
	Counters      map[string]uint64            `json:"counters,omitempty"`
	Gauges        map[string]float64           `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	DroppedEvents uint64                       `json:"dropped_events,omitempty"`
}

// Snapshot copies the registry's current values. Nil-safe (empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = HistogramSnapshot{
				Bounds: append([]float64(nil), h.Bounds()...),
				Counts: h.BucketCounts(),
				Count:  h.Count(),
				Sum:    h.Sum(),
			}
		}
	}
	return s
}

// Snapshot exports the collector's registry with the event drop counter
// attached. Nil-safe.
func (c *Collector) Snapshot() Snapshot {
	s := c.Registry().Snapshot()
	s.DroppedEvents = c.DroppedEvents()
	return s
}

// MarshalCanonical renders the snapshot as compact JSON. encoding/json
// sorts map keys, so equal snapshots always serialize to equal bytes —
// the form the tenant-isolation drills byte-compare.
func (s Snapshot) MarshalCanonical() ([]byte, error) {
	return json.Marshal(s)
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// splitName separates a metric name with optional inline labels:
// `np_packet_cycles{core="0"}` → base `np_packet_cycles`, labels
// `core="0"`.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// joinLabels renders a label set (either part may be empty).
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "," + b
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Metrics are sorted by name so the output is deterministic (golden
// files, diffable scrapes). Histograms expand to cumulative _bucket series
// plus _sum and _count, folding inline labels in with the le label.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		base, _ := splitName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", base, n, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		base, _ := splitName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", base, n, promFloat(s.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		base, labels := splitName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
			return err
		}
		var cum uint64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			ls := joinLabels(labels, `le="`+le+`"`)
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, ls, cum); err != nil {
				return err
			}
		}
		sumName, countName := base+"_sum", base+"_count"
		if labels != "" {
			sumName += "{" + labels + "}"
			countName += "{" + labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %s\n%s %d\n", sumName, promFloat(h.Sum), countName, h.Count); err != nil {
			return err
		}
	}

	if s.DroppedEvents > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE obs_trace_dropped_events counter\nobs_trace_dropped_events %d\n", s.DroppedEvents); err != nil {
			return err
		}
	}
	return nil
}

// eventJSON is the trace-export schema for one event.
type eventJSON struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	Core int32  `json:"core"`
	PC   uint32 `json:"pc,omitempty"`
	Aux  uint64 `json:"aux,omitempty"`
}

// WriteTrace writes events as JSON lines (one object per line), the
// `npsim -trace` file format.
func WriteTrace(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(eventJSON{
			Seq: ev.Seq, Kind: ev.Kind.String(), Core: ev.Core, PC: ev.PC, Aux: ev.Aux,
		}); err != nil {
			return err
		}
	}
	return nil
}
