package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic uint64 metric. All methods are atomic and nil-safe
// (a nil counter is the disabled hook).
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric supporting both accumulation (seconds totals)
// and idempotent sets (rollout cost republished on resume). Atomic via
// bit-casting; nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates v (CAS loop; the management plane is not a hot path).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bounds are inclusive upper
// edges; one implicit overflow bucket catches everything above the last
// bound. Observe is a linear scan over ≤ ~16 bounds with one atomic add —
// no allocation, no lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	sum    Gauge
}

// Standard bucket layouts.
var (
	// CycleBuckets covers per-packet simulated core cycles.
	CycleBuckets = []float64{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}
	// LatencyBuckets covers wall-clock seconds (batch latency).
	LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}
	// SecondsBuckets covers modeled management-plane seconds (package
	// verification, install, backoff).
	SecondsBuckets = []float64{0.01, 0.1, 0.5, 1, 2, 5, 10, 30, 60}
)

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count reports the total number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reports the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// Bounds returns the bucket upper edges (shared; do not mutate).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts copies out the per-bucket counts (len(Bounds())+1, last is
// the overflow bucket).
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Registry holds named metrics. Lookup takes a mutex — instrumented code
// resolves its metrics once (at install/construction time) and holds the
// pointers; the per-packet path never touches the registry. Names follow
// Prometheus conventions and may carry inline labels:
// `np_packet_cycles{core="0"}`.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe: a
// nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (bounds must be sorted ascending; later calls reuse the
// existing buckets regardless of the bounds argument). Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}
