package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// buildFixture populates a collector with fixed values so the exporter
// output is exactly reproducible.
func buildFixture() *Collector {
	c := New(8)
	reg := c.Registry()
	reg.Counter("np_packets_processed_total").Add(100)
	reg.Counter("np_alarms_total").Add(3)
	reg.Gauge("rollout_backoff_seconds").Set(1.5)
	h := reg.Histogram(`np_packet_cycles{core="0"}`, []float64{100, 1000})
	h.Observe(50)
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	c.Ring(0).Emit(EvAlarm, 0x44, 123)
	c.Ring(0).Emit(EvRecover, 0, 0)
	return c
}

const goldenProm = `# TYPE np_alarms_total counter
np_alarms_total 3
# TYPE np_packets_processed_total counter
np_packets_processed_total 100
# TYPE rollout_backoff_seconds gauge
rollout_backoff_seconds 1.5
# TYPE np_packet_cycles histogram
np_packet_cycles_bucket{core="0",le="100"} 2
np_packet_cycles_bucket{core="0",le="1000"} 3
np_packet_cycles_bucket{core="0",le="+Inf"} 4
np_packet_cycles_sum{core="0"} 5600
np_packet_cycles_count{core="0"} 4
`

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := buildFixture().Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenProm {
		t.Fatalf("prometheus export mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), goldenProm)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := buildFixture()
	var b strings.Builder
	if err := c.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("JSON export does not parse back: %v", err)
	}
	if back.Counters["np_packets_processed_total"] != 100 ||
		back.Counters["np_alarms_total"] != 3 {
		t.Errorf("counters did not round-trip: %+v", back.Counters)
	}
	if back.Gauges["rollout_backoff_seconds"] != 1.5 {
		t.Errorf("gauges did not round-trip: %+v", back.Gauges)
	}
	h, ok := back.Histograms[`np_packet_cycles{core="0"}`]
	if !ok {
		t.Fatalf("histogram missing from JSON: %+v", back.Histograms)
	}
	if h.Count != 4 || h.Sum != 5600 || len(h.Counts) != 3 || h.Counts[2] != 1 {
		t.Errorf("histogram did not round-trip: %+v", h)
	}
}

func TestTraceExport(t *testing.T) {
	c := buildFixture()
	var b strings.Builder
	if err := WriteTrace(&b, c.Events()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace = %d lines, want 2:\n%s", len(lines), b.String())
	}
	var first struct {
		Seq  uint64 `json:"seq"`
		Kind string `json:"kind"`
		Core int32  `json:"core"`
		PC   uint32 `json:"pc"`
		Aux  uint64 `json:"aux"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Kind != "alarm" || first.PC != 0x44 || first.Aux != 123 || first.Core != 0 {
		t.Errorf("first trace line = %+v", first)
	}
}

// The hot-path hooks must not allocate whether telemetry is attached or
// not: Emit writes into a preallocated ring, Observe and Add are atomics.
func TestHooksZeroAlloc(t *testing.T) {
	c := New(1 << 16)
	ring := c.Ring(0)
	h := c.Registry().Histogram("cycles", CycleBuckets)
	cnt := c.Registry().Counter("pkts")
	allocs := testing.AllocsPerRun(1000, func() {
		ring.Emit(EvAlarm, 0x40, 99)
		h.Observe(640)
		cnt.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("enabled hooks allocate %.2f objects/op, want 0", allocs)
	}

	var nilRing *EventRing
	var nilH *Histogram
	var nilC *Counter
	allocs = testing.AllocsPerRun(1000, func() {
		nilRing.Emit(EvAlarm, 0x40, 99)
		nilH.Observe(640)
		nilC.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled hooks allocate %.2f objects/op, want 0", allocs)
	}
}
