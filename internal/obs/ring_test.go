package obs

import (
	"sync"
	"testing"
)

func TestRingEmitDrainOrder(t *testing.T) {
	c := New(8)
	r0, r1 := c.Ring(0), c.Ring(1)
	r0.Emit(EvAlarm, 0x40, 100)
	r1.Emit(EvFault, 0, 200)
	r0.Emit(EvRecover, 0, 0)

	evs := c.Events()
	if len(evs) != 3 {
		t.Fatalf("Events() = %d events, want 3", len(evs))
	}
	// Global sequence orders the merged stream across cores.
	want := []struct {
		kind EventKind
		core int32
	}{{EvAlarm, 0}, {EvFault, 1}, {EvRecover, 0}}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].Core != w.core {
			t.Errorf("event %d = %v on core %d, want %v on core %d",
				i, evs[i].Kind, evs[i].Core, w.kind, w.core)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("event %d seq %d not increasing", i, evs[i].Seq)
		}
	}
	if evs[0].PC != 0x40 || evs[0].Aux != 100 {
		t.Errorf("alarm event payload = pc %#x aux %d", evs[0].PC, evs[0].Aux)
	}

	// Events() is non-destructive; Drain() clears.
	if got := len(c.Events()); got != 3 {
		t.Fatalf("second Events() = %d, want 3 (snapshot must not clear)", got)
	}
	if got := len(c.Drain()); got != 3 {
		t.Fatalf("Drain() = %d, want 3", got)
	}
	if got := len(c.Drain()); got != 0 {
		t.Fatalf("Drain() after drain = %d, want 0", got)
	}
}

func TestRingOverflowDropsAndCounts(t *testing.T) {
	r := NewEventRing(0, 4)
	for i := 0; i < 10; i++ {
		r.Emit(EvAlarm, uint32(i), 0)
	}
	if r.Len() != 4 {
		t.Fatalf("Len() = %d, want 4 (ring capacity)", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", r.Dropped())
	}
	// The ring keeps the oldest records; the dropped tail is the newest.
	evs := r.Drain(nil)
	for i, ev := range evs {
		if ev.PC != uint32(i) {
			t.Errorf("event %d PC = %d, want %d (oldest-first retention)", i, ev.PC, i)
		}
	}
	// Drain frees capacity but preserves the lifetime drop counter.
	r.Emit(EvFault, 99, 0)
	if r.Len() != 1 || r.Dropped() != 6 {
		t.Fatalf("after drain: len=%d dropped=%d, want 1 and 6", r.Len(), r.Dropped())
	}
}

func TestRingWrapAfterPartialDrain(t *testing.T) {
	r := NewEventRing(0, 4)
	for i := 0; i < 3; i++ {
		r.Emit(EvAlarm, uint32(i), 0)
	}
	r.Drain(nil)
	// start has advanced; the next writes must wrap cleanly.
	for i := 10; i < 14; i++ {
		r.Emit(EvCommit, uint32(i), 0)
	}
	evs := r.Snapshot(nil)
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.PC != uint32(10+i) {
			t.Errorf("event %d PC = %d, want %d", i, ev.PC, 10+i)
		}
	}
}

// Nil collectors, rings, and metrics must be safe no-ops: this is the
// disabled-telemetry configuration every hot-path hook relies on.
func TestNilSafety(t *testing.T) {
	var c *Collector
	if c.Registry() != nil || c.Ring(0) != nil {
		t.Fatal("nil collector must hand out nil registry and rings")
	}
	if c.Events() != nil || c.Drain() != nil || c.DroppedEvents() != 0 {
		t.Fatal("nil collector event APIs must be empty no-ops")
	}
	var r *EventRing
	r.Emit(EvAlarm, 0, 0)
	if r.Len() != 0 || r.Dropped() != 0 || r.Drain(nil) != nil {
		t.Fatal("nil ring must be a no-op")
	}
	var reg *Registry
	cnt := reg.Counter("x")
	cnt.Inc()
	cnt.Add(5)
	if cnt.Value() != 0 {
		t.Fatal("nil counter must be a no-op")
	}
	g := reg.Gauge("y")
	g.Add(1)
	g.Set(2)
	if g.Value() != 0 {
		t.Fatal("nil gauge must be a no-op")
	}
	h := reg.Histogram("z", CycleBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Bounds() != nil || h.BucketCounts() != nil {
		t.Fatal("nil histogram must be a no-op")
	}
	if s := reg.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// Concurrent emitters and a draining reader must be race-free (run under
// make test-obs with -race).
func TestRingConcurrentEmitDrain(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for core := 0; core < 4; core++ {
		r := c.Ring(core)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Emit(EvAlarm, uint32(i), 0)
			}
		}()
	}
	done := make(chan struct{})
	var drained int
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			drained += len(c.Drain())
		}
	}()
	wg.Wait()
	<-done
	total := uint64(drained+len(c.Drain())) + c.DroppedEvents()
	if total != 4000 {
		t.Fatalf("drained+buffered+dropped = %d, want 4000", total)
	}
}
