// Package obs is the observability layer of the monitored data plane: a
// zero-allocation-on-the-hot-path telemetry subsystem sitting beside the
// checking path (the FireGuard/R5Detect separation of detection from
// reporting). It provides
//
//   - a structured event tracer for the alarm → reset → recover lifecycle
//     and the install/stage/commit/rollback transitions: fixed-size records
//     written into preallocated per-core rings, with drop counting when a
//     ring is full and a drainable snapshot API (ring.go);
//
//   - a metrics registry of atomic counters, float gauges, and fixed-bucket
//     histograms that npu, network, core, and timing publish into
//     (metrics.go);
//
//   - exporters: a JSON snapshot, Prometheus-style text, and a JSON-lines
//     event trace (export.go).
//
// Every hook is nil-safe: a nil *Collector yields nil rings, counters, and
// histograms, whose methods are no-ops, so instrumented code pays only a
// nil-check when telemetry is disabled — the PR-1 zero-alloc packet-path
// guarantee is preserved whether or not a collector is attached.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultRingDepth is the per-core event-ring capacity when Collector is
// built with depth 0.
const DefaultRingDepth = 256

// Collector owns the metrics registry and the per-core event rings. One
// collector serves one device (or one simulation); all rings share a global
// sequence counter so a merged drain is totally ordered.
type Collector struct {
	reg *Registry
	seq atomic.Uint64

	mu    sync.Mutex
	rings []*EventRing
	depth int
}

// New builds a collector. depth sizes each per-core event ring; 0 selects
// DefaultRingDepth.
func New(depth int) *Collector {
	if depth <= 0 {
		depth = DefaultRingDepth
	}
	return &Collector{reg: NewRegistry(), depth: depth}
}

// Registry returns the metrics registry (nil for a nil collector).
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Ring returns the event ring for a core, creating it on first use (nil for
// a nil collector or a negative core). Ring creation allocates; callers
// fetch rings at install time, never on the packet path.
func (c *Collector) Ring(core int) *EventRing {
	if c == nil || core < 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for core >= len(c.rings) {
		c.rings = append(c.rings, nil)
	}
	if c.rings[core] == nil {
		c.rings[core] = &EventRing{
			buf:  make([]Event, c.depth),
			core: int32(core),
			seq:  &c.seq,
		}
	}
	return c.rings[core]
}

// snapshotRings copies the current ring set under the lock.
func (c *Collector) snapshotRings() []*EventRing {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*EventRing, len(c.rings))
	copy(out, c.rings)
	return out
}

// Events returns a copy of every buffered event across all rings, ordered
// by global sequence. The rings are left untouched.
func (c *Collector) Events() []Event {
	return c.collect(false)
}

// Drain returns every buffered event across all rings, ordered by global
// sequence, and clears the rings (drop counters are preserved).
func (c *Collector) Drain() []Event {
	return c.collect(true)
}

func (c *Collector) collect(clear bool) []Event {
	if c == nil {
		return nil
	}
	var out []Event
	for _, r := range c.snapshotRings() {
		if clear {
			out = r.Drain(out)
		} else {
			out = r.Snapshot(out)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// DroppedEvents sums the events every ring discarded because it was full.
func (c *Collector) DroppedEvents() uint64 {
	if c == nil {
		return 0
	}
	var n uint64
	for _, r := range c.snapshotRings() {
		if r != nil {
			n += r.Dropped()
		}
	}
	return n
}
