package obs

import (
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pkts_total")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if reg.Counter("pkts_total") != c {
		t.Fatal("same name must return the same counter")
	}
	g := reg.Gauge("seconds_total")
	g.Add(1.5)
	g.Add(0.25)
	if g.Value() != 1.75 {
		t.Fatalf("gauge = %g, want 1.75", g.Value())
	}
	g.Set(3)
	if g.Value() != 3 {
		t.Fatalf("gauge after Set = %g, want 3", g.Value())
	}
}

// Bucket boundaries are inclusive upper edges: a sample exactly on a bound
// lands in that bound's bucket; anything above the last bound lands in the
// overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("cycles", []float64{10, 100, 1000})
	samples := []float64{5, 10, 10.5, 100, 101, 1000, 1001, 99999}
	for _, v := range samples {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // (-inf,10] (10,100] (100,1000] (1000,+inf)
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != uint64(len(samples)) {
		t.Errorf("Count() = %d, want %d", h.Count(), len(samples))
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if h.Sum() != sum {
		t.Errorf("Sum() = %g, want %g", h.Sum(), sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", LatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%7) * 1e-5)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count() = %d, want 8000", h.Count())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvAlarm, EvFault, EvWatchdog, EvRecover, EvQuarantine,
		EvInstall, EvStage, EvCommit, EvRollback, EvAbort}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if got := EventKind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind = %q", got)
	}
}
