package campaign

import (
	"fmt"
	"sort"
)

// Detection-latency distributions: run a family across a seed sweep and
// summarize how many packets the plane admitted before the classifier
// reached the family's detection level — the campaign engine's headline
// metric (§E15).

// DetectionDistribution summarizes packets-to-detection over a seed sweep.
type DetectionDistribution struct {
	Family string `json:"family"`
	Runs   int    `json:"runs"`
	// Detected of Runs campaigns reached the family's detection level.
	Detected int `json:"detected"`
	// P50/P99 are nearest-rank quantiles of packets-to-detection over the
	// detected campaigns; -1 when none detected.
	P50 int64 `json:"p50"`
	P99 int64 `json:"p99"`
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// MeanEvasionDepth averages the family's evasion-depth metric across
	// all runs (matched prefix, frontier duty, or slipped packets).
	MeanEvasionDepth float64 `json:"mean_evasion_depth"`
}

// MeasureDetection sweeps seeds baseSeed..baseSeed+runs-1 through one
// family and aggregates the detection-latency distribution. Every run is
// also self-checked, so a regression in any family fails the sweep.
func MeasureDetection(family string, runs int, baseSeed int64) (DetectionDistribution, error) {
	d := DetectionDistribution{Family: family, Runs: runs, P50: -1, P99: -1, Min: -1, Max: -1}
	if runs <= 0 {
		return d, fmt.Errorf("campaign: need >= 1 run, got %d", runs)
	}
	var latencies []int64
	var depth float64
	for i := 0; i < runs; i++ {
		r, err := RunCampaign(Config{Family: family, Seed: baseSeed + int64(i)})
		if err != nil {
			return d, err
		}
		if err := r.Check(); err != nil {
			return d, fmt.Errorf("seed %d: %w", baseSeed+int64(i), err)
		}
		if r.PacketsToDetect >= 0 {
			latencies = append(latencies, r.PacketsToDetect)
		}
		depth += r.EvasionDepth
	}
	d.Detected = len(latencies)
	d.MeanEvasionDepth = depth / float64(runs)
	if len(latencies) == 0 {
		return d, nil
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	d.Min = latencies[0]
	d.Max = latencies[len(latencies)-1]
	d.P50 = nearestRank(latencies, 0.50)
	d.P99 = nearestRank(latencies, 0.99)
	return d, nil
}

// nearestRank returns the nearest-rank quantile of a sorted slice.
func nearestRank(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return -1
	}
	rank := int(q*float64(len(sorted)) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
