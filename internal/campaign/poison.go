package campaign

import (
	"fmt"

	"sdmmon/internal/npu"
	"sdmmon/internal/threat"
)

// The poison family is the adversarial baseline-poisoning ramp FreezeAt
// exists to contain: train the EWMA baselines with a slowly rising alarm
// rate, then strike at a duty the trained mean would forgive. Run with the
// campaign default (FreezeAt LOW) the baselines freeze at the clean floor
// on the first LOW transition, the ramp reads as a growing deviation, and
// the classifier reaches MEDIUM while the ramp is still climbing. Run with
// FreezeAt CRITICAL (the degraded-containment configuration the FreezeAt
// regression pins) the baselines absorb the whole ramp and the strike
// lands a z-score under 2 — the campaign stays at or below LOW
// throughout. The two trajectories differ only in the freeze gate.

// poisonPhase is one segment of the training schedule.
type poisonPhase struct {
	until int // exclusive end tick
	duty  float64
	kind  string
}

// poisonSchedule: short clean lead-in, three-step training ramp, a strike
// at 3/7 duty (exactly 3 of the attacked core's 7-packet quota, keeping
// the realized rate just below the 0.6 absolute-escalation clamp), then a
// quiet tail for decay. Total 64 ticks — the family's default length.
var poisonSchedule = []poisonPhase{
	{until: 6, duty: 0, kind: "lead-in"},
	{until: 12, duty: 0.10, kind: "ramp-0.10"},
	{until: 18, duty: 0.22, kind: "ramp-0.22"},
	{until: 36, duty: 0.28, kind: "plateau-0.28"},
	{until: 48, duty: 3.0 / 7.0, kind: "strike-3/7"},
	{until: 1 << 30, duty: 0, kind: "tail"},
}

type poisonDriver struct {
	pkt      []byte
	core     int
	outcomes []MutantOutcome
}

func newPoisonDriver(c *campaign) (driver, error) {
	hijack, err := c.smash.HijackPayload()
	if err != nil {
		return nil, err
	}
	pkt, err := c.smash.CraftPacket(hijack)
	if err != nil {
		return nil, err
	}
	d := &poisonDriver{
		pkt: pkt,
		// The last core: with the default 30-packet/4-core shard its quota
		// is 7, so the 3/7 strike realizes a constant per-tick rate.
		core: c.spec.Cores - 1,
	}
	for i, ph := range poisonSchedule {
		if ph.duty == 0 {
			continue
		}
		start := 0
		if i > 0 {
			start = poisonSchedule[i-1].until
		}
		d.outcomes = append(d.outcomes, MutantOutcome{
			Index: len(d.outcomes), Kind: ph.kind, Tick: start,
		})
	}
	return d, nil
}

func poisonPhaseAt(t int) (int, poisonPhase) {
	for i, ph := range poisonSchedule {
		if t < ph.until {
			return i, ph
		}
	}
	return -1, poisonPhase{}
}

// outcomeIndex maps a schedule phase to its mutant slot (attack phases
// only).
func (d *poisonDriver) outcomeIndex(phase int) int {
	idx := -1
	for i := 0; i <= phase && i < len(poisonSchedule); i++ {
		if poisonSchedule[i].duty > 0 {
			idx++
		}
	}
	if idx >= 0 && poisonSchedule[phase].duty == 0 {
		return -1
	}
	return idx
}

func (d *poisonDriver) detectLevel() threat.Level { return threat.Medium }
func (d *poisonDriver) attackShard() int          { return 0 }
func (d *poisonDriver) attackCores() []int        { return []int{d.core} }

func (d *poisonDriver) duty(t int) float64 {
	_, ph := poisonPhaseAt(t)
	return ph.duty
}

func (d *poisonDriver) surge(t int) (int, int) { return -1, 0 }

func (d *poisonDriver) craft(c *campaign, t, shard, core int) (int, []byte, bool, error) {
	phase, ph := poisonPhaseAt(t)
	if ph.duty == 0 {
		return 0, nil, false, nil
	}
	return d.outcomeIndex(phase), d.pkt, true, nil
}

func (d *poisonDriver) observe(c *campaign, t, shard, core, mi int, res npu.Result) error {
	if mi < 0 || mi >= len(d.outcomes) {
		return fmt.Errorf("campaign: poison phase index %d out of range", mi)
	}
	o := &d.outcomes[mi]
	o.Packets++
	if res.Detected {
		o.Detected = true
	}
	return nil
}

func (d *poisonDriver) afterTick(c *campaign, t int, lvl threat.Level) error {
	// A phase also counts as detected when the classifier reaches MEDIUM
	// while it runs — the burst-level attribution, independent of per-packet
	// alarms.
	if lvl >= threat.Medium {
		phase, ph := poisonPhaseAt(t)
		if ph.duty > 0 {
			if mi := d.outcomeIndex(phase); mi >= 0 {
				d.outcomes[mi].Detected = true
			}
		}
	} else if lvl <= threat.Low {
		phase, ph := poisonPhaseAt(t)
		if ph.duty > 0 {
			if mi := d.outcomeIndex(phase); mi >= 0 {
				d.outcomes[mi].Depth += c.atkTick
			}
		}
	}
	return nil
}

func (d *poisonDriver) finish(c *campaign) {
	c.res.Mutants = d.outcomes
	// Evasion depth: poison packets absorbed while the classifier sat at or
	// below LOW — the whole ramp in the unfrozen configuration.
	var slipped float64
	for _, o := range d.outcomes {
		slipped += float64(o.Depth)
	}
	c.res.EvasionDepth = slipped
}

func checkPoison(r *Result) error {
	if r.Peak < threat.Medium {
		return fmt.Errorf("poison: peak %v with frozen baselines, want >= MEDIUM", r.Peak)
	}
	if r.PacketsToLevel[threat.Medium] < 0 {
		return fmt.Errorf("poison: frozen baselines never reached MEDIUM")
	}
	if r.AdmissionTightened < 1 {
		return fmt.Errorf("poison: admission never tightened at MEDIUM")
	}
	if r.LockdownFired {
		return fmt.Errorf("poison: lockdown fired below CRITICAL")
	}
	if r.Final > threat.Low {
		return fmt.Errorf("poison: final level %v, want decay to <= LOW in the tail", r.Final)
	}
	return nil
}
