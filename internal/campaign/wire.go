package campaign

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"sdmmon/internal/threat"
)

// The canonical campaign wire format ("CAMP"), following the repo's
// serialization idiom: 4-byte ASCII magic, FNV-1a checksum over the
// payload, big-endian fixed-width integers, length-prefixed strings, and a
// strict decoder that rejects truncation, unknown enums, and trailing
// bytes. A Spec is the *resolved* configuration — every default already
// applied — so Encode∘Decode is a fixed point and a decoded Spec replays
// the exact campaign that produced it.

// ErrWire is wrapped by every decode failure.
var ErrWire = errors.New("campaign: malformed wire payload")

const (
	specMagic   = "CAMP"
	specVersion = 1
)

// Compression enum on the wire.
const (
	compSum  uint8 = 0
	compSBox uint8 = 1
)

// Spec is the canonical, fully resolved campaign parameterization.
type Spec struct {
	Family string `json:"family"`
	Seed   int64  `json:"seed"`
	Shards int    `json:"shards"`
	Cores  int    `json:"cores"`
	Ticks  int    `json:"ticks"`
	// PacketsPerTick is the plane-wide clean arrival rate.
	PacketsPerTick int `json:"packets_per_tick"`
	// Mutants sizes the mutation pool (gadget chains, noc bursts).
	Mutants int `json:"mutants"`
	// ProbeBudget / CycleBudget cap the collision family's search.
	ProbeBudget int    `json:"probe_budget"`
	CycleBudget uint64 `json:"cycle_budget"`
	// Compression is "sum" or "sbox".
	Compression string `json:"compression"`
	// DutyMilli pins the slowdrip family to a fixed duty (millis); 0 means
	// adaptive titration.
	DutyMilli int `json:"duty_milli"`
	// FreezeAt overrides the engine's baseline-freeze level; 0 keeps the
	// campaign default (threat.Low).
	FreezeAt threat.Level `json:"freeze_at"`
}

// ResolveSpec applies family defaults and validates, producing the
// canonical Spec a Config denotes.
func ResolveSpec(cfg Config) (Spec, error) {
	s := Spec{
		Family: cfg.Family, Seed: cfg.Seed,
		Shards: cfg.Shards, Cores: cfg.Cores,
		Ticks: cfg.Ticks, PacketsPerTick: cfg.PacketsPerTick,
		Mutants:     cfg.Mutants,
		ProbeBudget: cfg.ProbeBudget, CycleBudget: cfg.CycleBudget,
		Compression: cfg.Compression,
		DutyMilli:   int(cfg.Duty*1000 + 0.5),
		FreezeAt:    cfg.FreezeAt,
	}
	if s.Shards == 0 {
		s.Shards = 3
	}
	if s.Cores == 0 {
		s.Cores = 4
	}
	if s.PacketsPerTick == 0 {
		s.PacketsPerTick = 30 * s.Shards
	}
	if s.Compression == "" {
		s.Compression = "sbox"
	}
	switch s.Family {
	case FamilyGadget:
		if s.Mutants == 0 {
			s.Mutants = 24
		}
		if s.Ticks == 0 {
			s.Ticks = 48
		}
	case FamilyCollision:
		if s.ProbeBudget == 0 && s.CycleBudget == 0 {
			s.ProbeBudget = 192
		}
		if s.Ticks == 0 {
			s.Ticks = 96
		}
	case FamilySlowDrip:
		if s.Ticks == 0 {
			s.Ticks = 80
		}
	case FamilyNoC:
		if s.Mutants == 0 {
			s.Mutants = 8
		}
		if s.Ticks == 0 {
			e := (s.Mutants + 1) / 2
			d := s.Mutants / 2
			s.Ticks = Warmup + 8*e + 14*d + 14
		}
	case FamilyPoison:
		if s.Ticks == 0 {
			s.Ticks = 64
		}
	default:
		return Spec{}, fmt.Errorf("campaign: unknown family %q (want one of %v)", s.Family, Families())
	}
	return s, s.validate()
}

func (s Spec) validate() error {
	known := false
	for _, f := range Families() {
		if s.Family == f {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("campaign: unknown family %q", s.Family)
	}
	if s.Shards < 1 || s.Shards > 1<<16-1 || s.Cores < 2 || s.Cores > 1<<16-1 {
		return fmt.Errorf("campaign: need 1..65535 shards and 2..65535 cores, got %d/%d", s.Shards, s.Cores)
	}
	if s.Ticks < 1 || s.PacketsPerTick < 1 {
		return fmt.Errorf("campaign: need >= 1 tick and packet per tick, got %d/%d", s.Ticks, s.PacketsPerTick)
	}
	if s.Compression != "sum" && s.Compression != "sbox" {
		return fmt.Errorf("campaign: unknown compression %q", s.Compression)
	}
	if s.Family == FamilyCollision && s.ProbeBudget <= 0 && s.CycleBudget == 0 {
		return fmt.Errorf("campaign: collision family refuses an unbounded search budget")
	}
	if s.Mutants < 0 || s.ProbeBudget < 0 || s.DutyMilli < 0 {
		return fmt.Errorf("campaign: negative spec field: %+v", s)
	}
	if s.DutyMilli > 1000 {
		return fmt.Errorf("campaign: duty %d milli exceeds 1.0", s.DutyMilli)
	}
	if int(s.FreezeAt) >= threat.NumLevels {
		return fmt.Errorf("campaign: freeze level %d out of range", s.FreezeAt)
	}
	return nil
}

func checksum(b []byte) uint32 {
	h := fnv.New32a()
	h.Write(b)
	return h.Sum32()
}

// Encode serializes the spec under the CAMP envelope.
func (s Spec) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteByte(specVersion)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s.Family)))
	buf.Write(n[:])
	buf.WriteString(s.Family)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(s.Seed))
	buf.Write(u64[:])
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], uint16(s.Shards))
	buf.Write(u16[:])
	binary.BigEndian.PutUint16(u16[:], uint16(s.Cores))
	buf.Write(u16[:])
	for _, v := range []int{s.Ticks, s.PacketsPerTick, s.Mutants, s.ProbeBudget, s.DutyMilli} {
		binary.BigEndian.PutUint32(n[:], uint32(v))
		buf.Write(n[:])
	}
	binary.BigEndian.PutUint64(u64[:], s.CycleBudget)
	buf.Write(u64[:])
	comp := compSBox
	if s.Compression == "sum" {
		comp = compSum
	}
	buf.WriteByte(comp)
	buf.WriteByte(uint8(s.FreezeAt))

	payload := buf.Bytes()
	out := make([]byte, 0, 8+len(payload))
	out = append(out, specMagic...)
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], checksum(payload))
	out = append(out, c[:]...)
	return append(out, payload...)
}

// DecodeSpec strictly parses a CAMP payload: bad magic, checksum
// mismatches, unknown enums, truncation, out-of-range fields, and trailing
// bytes are all rejected, and the decoded spec must itself validate.
func DecodeSpec(wire []byte) (Spec, error) {
	var s Spec
	if len(wire) < 8 || string(wire[:4]) != specMagic {
		return s, fmt.Errorf("%w: bad %s envelope", ErrWire, specMagic)
	}
	payload := wire[8:]
	if binary.BigEndian.Uint32(wire[4:8]) != checksum(payload) {
		return s, fmt.Errorf("%w: checksum mismatch", ErrWire)
	}
	r := bytes.NewReader(payload)
	ver, err := r.ReadByte()
	if err != nil {
		return s, fmt.Errorf("%w: version: %v", ErrWire, err)
	}
	if ver != specVersion {
		return s, fmt.Errorf("%w: unsupported version %d", ErrWire, ver)
	}
	var flen uint32
	if err := binary.Read(r, binary.BigEndian, &flen); err != nil {
		return s, fmt.Errorf("%w: family length: %v", ErrWire, err)
	}
	if int64(flen) > int64(r.Len()) {
		return s, fmt.Errorf("%w: family length %d exceeds payload", ErrWire, flen)
	}
	fam := make([]byte, flen)
	if _, err := io.ReadFull(r, fam); err != nil {
		return s, fmt.Errorf("%w: family: %v", ErrWire, err)
	}
	s.Family = string(fam)
	var seed uint64
	if err := binary.Read(r, binary.BigEndian, &seed); err != nil {
		return s, fmt.Errorf("%w: seed: %v", ErrWire, err)
	}
	s.Seed = int64(seed)
	var v16 uint16
	if err := binary.Read(r, binary.BigEndian, &v16); err != nil {
		return s, fmt.Errorf("%w: shards: %v", ErrWire, err)
	}
	s.Shards = int(v16)
	if err := binary.Read(r, binary.BigEndian, &v16); err != nil {
		return s, fmt.Errorf("%w: cores: %v", ErrWire, err)
	}
	s.Cores = int(v16)
	u32s := []*int{&s.Ticks, &s.PacketsPerTick, &s.Mutants, &s.ProbeBudget, &s.DutyMilli}
	for i, dst := range u32s {
		var v uint32
		if err := binary.Read(r, binary.BigEndian, &v); err != nil {
			return s, fmt.Errorf("%w: u32 field %d: %v", ErrWire, i, err)
		}
		if v > 1<<31-1 {
			return s, fmt.Errorf("%w: u32 field %d overflows int", ErrWire, i)
		}
		*dst = int(v)
	}
	if err := binary.Read(r, binary.BigEndian, &s.CycleBudget); err != nil {
		return s, fmt.Errorf("%w: cycle budget: %v", ErrWire, err)
	}
	comp, err := r.ReadByte()
	if err != nil {
		return s, fmt.Errorf("%w: compression: %v", ErrWire, err)
	}
	switch comp {
	case compSum:
		s.Compression = "sum"
	case compSBox:
		s.Compression = "sbox"
	default:
		return s, fmt.Errorf("%w: unknown compression %d", ErrWire, comp)
	}
	fz, err := r.ReadByte()
	if err != nil {
		return s, fmt.Errorf("%w: freeze level: %v", ErrWire, err)
	}
	s.FreezeAt = threat.Level(fz)
	if r.Len() != 0 {
		return s, fmt.Errorf("%w: %d trailing spec bytes", ErrWire, r.Len())
	}
	if err := s.validate(); err != nil {
		return s, fmt.Errorf("%w: %v", ErrWire, err)
	}
	return s, nil
}

// ReplayBytes is the canonical serialization of a campaign result — the
// byte string the replay suite compares across runs. JSON with sorted map
// keys and no host-timing fields, so two runs of the same Spec are
// byte-identical.
func (r *Result) ReplayBytes() ([]byte, error) {
	return json.Marshal(r)
}
