package campaign

import (
	"fmt"

	"sdmmon/internal/attack"
	"sdmmon/internal/isa"
	"sdmmon/internal/npu"
	"sdmmon/internal/threat"
)

// The collision family runs a budget-capped partial-hash collision search
// against the live Merkle parameter: the persist-attack store variants,
// shuffled by the campaign seed, are probed one packet at a time against a
// monitored core until one variant's hash collides with the expected
// stream and its store lands persistent scratch corruption. Probes run at
// 50% duty, so the classifier latches HIGH on the first attack tick and
// isolates the probed core; the driver then rotates to the next active
// core — the search continues under fire, which is exactly the regime the
// per-device parameter (and PR 7's rotation) is meant to contain.

type collisionDriver struct {
	variants []isa.Word
	pkts     [][]byte
	budget   attack.SearchBudget

	cur        int // next variant index
	core       int // core currently probed
	attempts   int
	cycles     uint64
	exhausted  bool
	found      bool
	foundProbe int
	// pending is the variant index probed last, checked for persistence in
	// observe.
	done bool
}

func newCollisionDriver(c *campaign) (driver, error) {
	vars := c.smash.PersistVariants()
	c.rng.shuffleWords(vars)
	d := &collisionDriver{
		variants:   vars,
		budget:     attack.SearchBudget{MaxProbes: c.spec.ProbeBudget, MaxCycles: c.spec.CycleBudget},
		core:       1,
		foundProbe: -1,
	}
	for _, v := range vars {
		pkt, err := c.smash.CraftPacket([]isa.Word{v})
		if err != nil {
			return nil, err
		}
		d.pkts = append(d.pkts, pkt)
	}
	return d, nil
}

func (d *collisionDriver) detectLevel() threat.Level { return threat.High }
func (d *collisionDriver) attackShard() int          { return 0 }

func (d *collisionDriver) attackCores() []int {
	if d.done {
		return nil
	}
	return []int{d.core}
}

func (d *collisionDriver) duty(t int) float64 {
	if t < Warmup || d.done {
		return 0
	}
	return 0.5
}

func (d *collisionDriver) surge(t int) (int, int) { return -1, 0 }

func (d *collisionDriver) craft(c *campaign, t, shard, core int) (int, []byte, bool, error) {
	if d.done || d.cur >= len(d.variants) {
		return 0, nil, false, nil
	}
	// attack.SearchBudget semantics, enforced inline: refuse the probe that
	// would exceed either cap and mark the search exhausted.
	if d.budget.MaxProbes > 0 && d.attempts >= d.budget.MaxProbes {
		d.exhausted, d.done = true, true
		return 0, nil, false, nil
	}
	if d.budget.MaxCycles > 0 && d.cycles >= d.budget.MaxCycles {
		d.exhausted, d.done = true, true
		return 0, nil, false, nil
	}
	mi := d.cur
	d.cur++
	return mi, d.pkts[mi], true, nil
}

func (d *collisionDriver) observe(c *campaign, t, shard, core, mi int, res npu.Result) error {
	d.attempts++
	d.cycles += res.Cycles
	// The persistence check runs after EVERY probe, alarmed or not: the
	// engineered store corrupts scratch before the monitor alarms on the
	// following word, so a detected probe can still have landed.
	hit, err := attack.PersistSucceeded(c.nps[shard], core)
	if err != nil {
		return err
	}
	if hit {
		d.found, d.done = true, true
		d.foundProbe = d.attempts
		return nil
	}
	// Miss: the operator reimages (scratch scrub) and the attacker moves to
	// the next variant.
	return c.scrubScratch(shard, core)
}

func (d *collisionDriver) afterTick(c *campaign, t int, lvl threat.Level) error {
	if d.done {
		return nil
	}
	// The classifier isolates the probed core at HIGH; rotate the search to
	// the next active core, or stop when the shard has none left.
	if c.isolated[0][d.core] {
		active := c.activeCores(0)
		if len(active) == 0 {
			d.done = true
			return nil
		}
		next := -1
		for _, core := range active {
			if core > d.core {
				next = core
				break
			}
		}
		if next < 0 {
			next = active[0]
		}
		d.core = next
	}
	return nil
}

func (d *collisionDriver) finish(c *campaign) {
	c.res.Collision = &CollisionMetrics{
		Attempts:   d.attempts,
		Cycles:     d.cycles,
		Exhausted:  d.exhausted,
		Found:      d.found,
		FoundProbe: d.foundProbe,
	}
	if d.found {
		c.res.Mutants = []MutantOutcome{{
			Index: d.foundProbe - 1, Kind: "colliding-store", Tick: -1,
			Packets: 1, Detected: false, Depth: 1,
		}}
		c.res.EvasionDepth = 1
	}
}

func checkCollision(r *Result) error {
	m := r.Collision
	if m == nil {
		return fmt.Errorf("collision: no search metrics recorded")
	}
	if !m.Found && !m.Exhausted {
		return fmt.Errorf("collision: search neither found nor exhausted: %+v", m)
	}
	if r.Spec.ProbeBudget > 0 && m.Attempts > r.Spec.ProbeBudget {
		return fmt.Errorf("collision: %d attempts exceed probe budget %d", m.Attempts, r.Spec.ProbeBudget)
	}
	// A lucky search can win before the classifier sees one full attack
	// tick: the first tick probes ~duty×quota = 4 slots, and fewer probes
	// than that leave the realized alarm rate under the HIGH threshold.
	// That quiet win is a legal outcome (it is what the probe budget
	// prices), so the escalation/isolation assertions apply only when the
	// search survived a full tick of probing.
	quietWin := m.Found && m.FoundProbe > 0 && m.FoundProbe < 4
	if !quietWin {
		if r.Peak < threat.High {
			return fmt.Errorf("collision: peak %v, want >= HIGH while probing at 50%% duty", r.Peak)
		}
		if r.IsolatedCores < 1 {
			return fmt.Errorf("collision: no core isolated at HIGH")
		}
	}
	if r.LockdownFired {
		return fmt.Errorf("collision: lockdown fired on a core-local probe stream")
	}
	if r.Final > threat.Low {
		return fmt.Errorf("collision: final level %v, want <= LOW", r.Final)
	}
	return nil
}
