package campaign

import (
	"bytes"
	"testing"

	"sdmmon/internal/threat"
)

// Every family must satisfy its own Check across a spread of seeds — the
// same self-assertions the npsim -campaign drill enforces.
func TestCampaignFamiliesCheck(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				r, err := RunCampaign(Config{Family: fam, Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := r.Check(); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
				t.Logf("seed %d: peak=%v final=%v detect@%d mutants=%d/%d depth=%.2f iso=%d adm=%d stats=%+v",
					seed, r.Peak, r.Final, r.PacketsToDetect, r.MutantsDetected,
					len(r.Mutants), r.EvasionDepth, r.IsolatedCores, r.AdmissionTightened, r.Stats)
				if r.Collision != nil {
					t.Logf("seed %d: collision=%+v", seed, *r.Collision)
				}
				if r.SlowDrip != nil {
					t.Logf("seed %d: slowdrip=%+v", seed, *r.SlowDrip)
				}
			}
		})
	}
}

// A campaign is a pure function of its Spec: running the same spec twice —
// including once through the wire encoding — must reproduce the result
// byte for byte.
func TestCampaignReplayByteIdentity(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			spec, err := ResolveSpec(Config{Family: fam, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			r1, err := RunSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := DecodeSpec(spec.Encode())
			if err != nil {
				t.Fatal(err)
			}
			if decoded != spec {
				t.Fatalf("wire round trip changed the spec:\n got %+v\nwant %+v", decoded, spec)
			}
			r2, err := RunSpec(decoded)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := r1.ReplayBytes()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := r2.ReplayBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Errorf("replay diverged over %d/%d bytes", len(b1), len(b2))
			}
		})
	}
}

// Different seeds must explore different mutants: the gadget corpus is
// seed-driven, so two seeds produce different trajectories.
func TestCampaignSeedsDiffer(t *testing.T) {
	r1, err := RunCampaign(Config{Family: FamilyGadget, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunCampaign(Config{Family: FamilyGadget, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := r1.ReplayBytes()
	b2, _ := r2.ReplayBytes()
	if bytes.Equal(b1, b2) {
		t.Error("seeds 1 and 2 produced identical campaigns")
	}
}

// The conservation invariant and graded-response bookkeeping hold for
// every family even while responses fire mid-campaign.
func TestCampaignConservationUnderResponses(t *testing.T) {
	for _, fam := range Families() {
		r, err := RunCampaign(Config{Family: fam, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Stats.Conserved() {
			t.Errorf("%s: conservation violated: %+v", fam, r.Stats)
		}
		if r.StagedZeroized && r.StagedLeft != 0 {
			t.Errorf("%s: zeroize fired but %d staged bundles remain", fam, r.StagedLeft)
		}
	}
}

// FreezeAt override: the poison ramp must evade an engine whose baselines
// keep absorbing (FreezeAt CRITICAL) and be caught by the frozen default.
func TestCampaignPoisonFreezeContrast(t *testing.T) {
	frozen, err := RunCampaign(Config{Family: FamilyPoison, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	unfrozen, err := RunCampaign(Config{Family: FamilyPoison, Seed: 3, FreezeAt: threat.Critical})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("frozen: peak=%v toMedium=%d; unfrozen: peak=%v toMedium=%d",
		frozen.Peak, frozen.PacketsToLevel[threat.Medium],
		unfrozen.Peak, unfrozen.PacketsToLevel[threat.Medium])
	if frozen.PacketsToLevel[threat.Medium] < 0 {
		t.Error("frozen baselines never reached MEDIUM")
	}
	if unfrozen.Peak >= frozen.Peak && unfrozen.PacketsToLevel[threat.Medium] >= 0 &&
		frozen.PacketsToLevel[threat.Medium] >= 0 &&
		unfrozen.PacketsToLevel[threat.Medium] <= frozen.PacketsToLevel[threat.Medium] {
		t.Errorf("poisoning did not degrade the unfrozen engine: frozen peak %v vs unfrozen %v",
			frozen.Peak, unfrozen.Peak)
	}
}
