package campaign

import (
	"fmt"
	"sort"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/fleet"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

// The fleet-wide evasion drill: crack one router's hash parameter with a
// budgeted collision search, replay the winning store variant against the
// whole fleet before and after a hash-parameter rotation, and measure how
// rotation collapses the transfer rate. Pre-rotation the fleet is
// homogeneous — the paper's deployment — so one found collision owns every
// router; post-rotation each router holds a fresh parameter and the
// variant transfers only where it happens to collide again (≈1/16 under
// the 4-bit S-box compression). Fresh per-router searches then price the
// attacker's post-rotation cost in probes.

// FleetDrillConfig sizes the drill.
type FleetDrillConfig struct {
	Routers int   // fleet size; 0 selects 24
	Seed    int64 // drives the fleet build, variant order, and search order
	// ProbeBudget caps every collision search (attack.SearchBudget
	// MaxProbes semantics); 0 selects 256.
	ProbeBudget int
}

// FleetDrillResult is the drill's deterministic summary.
type FleetDrillResult struct {
	Routers     int   `json:"routers"`
	Seed        int64 `json:"seed"`
	ProbeBudget int   `json:"probe_budget"`

	// CrackAttempts is the probes spent cracking router 0 pre-rotation.
	CrackAttempts int    `json:"crack_attempts"`
	CrackCycles   uint64 `json:"crack_cycles"`

	// PreTransfer / PostTransfer count routers (out of Routers) the cracked
	// variant compromises when replayed before and after rotation.
	PreTransfer  int `json:"pre_transfer"`
	PostTransfer int `json:"post_transfer"`

	// Post-rotation per-router fresh searches: probes-to-success
	// distribution (nearest rank) and how many searches exhausted the
	// budget instead of succeeding.
	SearchP50       int `json:"search_p50"`
	SearchP99       int `json:"search_p99"`
	SearchExhausted int `json:"search_exhausted"`

	RotatedRouters int `json:"rotated_routers"`
}

// CollisionFleetDrill runs the pre/post-rotation evasion drill.
func CollisionFleetDrill(cfg FleetDrillConfig) (*FleetDrillResult, error) {
	if cfg.Routers == 0 {
		cfg.Routers = 24
	}
	if cfg.ProbeBudget == 0 {
		cfg.ProbeBudget = 256
	}
	res := &FleetDrillResult{Routers: cfg.Routers, Seed: cfg.Seed, ProbeBudget: cfg.ProbeBudget,
		SearchP50: -1, SearchP99: -1}

	f, err := fleet.New(fleet.Config{
		Routers:     cfg.Routers,
		GroupSize:   8,
		Seed:        cfg.Seed,
		Compression: mhash.SBoxCompress(),
	})
	if err != nil {
		return nil, err
	}
	routers := f.Routers()
	smash := attack.DefaultSmash()
	budget := attack.SearchBudget{MaxProbes: cfg.ProbeBudget}

	// Phase 1: crack the canary's parameter with a seeded-order search.
	variants := smash.PersistVariants()
	newRNG(cfg.Seed, "fleet-drill-crack").shuffleWords(variants)
	crack, stats, err := smash.SearchPersist(routerOracle(routers[0]), budget, variants)
	if err != nil {
		return nil, err
	}
	res.CrackAttempts = stats.Attempts
	res.CrackCycles = stats.Cycles
	if !crack.Succeeded {
		// The budget priced the attacker out on the canary itself — a legal
		// (if rare) outcome; the transfer phases are then vacuous.
		return res, nil
	}
	winner := variants[crack.Probes-1]
	pkt, err := smash.CraftPacket([]isa.Word{winner})
	if err != nil {
		return nil, err
	}

	// Phase 2: replay the winner fleet-wide before rotation.
	res.PreTransfer, err = replayAgainst(routers, pkt)
	if err != nil {
		return nil, err
	}

	// Phase 3: rotate every router to a fresh parameter via the control
	// plane's staged rollout.
	ctl, err := fleet.NewController(f, fleet.RolloutConfig{})
	if err != nil {
		return nil, err
	}
	rep, err := ctl.Run()
	if err != nil {
		return nil, err
	}
	res.RotatedRouters = len(rep.Routers)

	// Phase 4: replay the same winner against the rotated fleet.
	res.PostTransfer, err = replayAgainst(routers, pkt)
	if err != nil {
		return nil, err
	}

	// Phase 5: per-router fresh searches price the post-rotation attack.
	var probes []int
	for _, r := range routers {
		vs := smash.PersistVariants()
		newRNG(cfg.Seed, "fleet-drill-"+r.ID).shuffleWords(vs)
		br, _, err := smash.SearchPersist(routerOracle(r), budget, vs)
		if err != nil {
			return nil, err
		}
		if br.Succeeded {
			probes = append(probes, br.Probes)
		} else {
			res.SearchExhausted++
		}
	}
	if len(probes) > 0 {
		sort.Ints(probes)
		res.SearchP50 = int(nearestRank(toInt64(probes), 0.50))
		res.SearchP99 = int(nearestRank(toInt64(probes), 0.99))
	}
	return res, nil
}

// routerOracle probes one fleet router: process the packet on its single
// core, report whether the persistent store landed, and scrub between
// probes so each variant is judged alone.
func routerOracle(r *fleet.SimRouter) attack.CostedOracle {
	return func(pkt []byte) (bool, uint64, error) {
		res, err := r.NP.ProcessOn(0, pkt, 0)
		if err != nil {
			return false, 0, err
		}
		hit, err := attack.PersistSucceeded(r.NP, 0)
		if err != nil {
			return false, res.Cycles, err
		}
		if hit {
			if err := scrubRouter(r); err != nil {
				return false, res.Cycles, err
			}
			return true, res.Cycles, nil
		}
		return false, res.Cycles, scrubRouter(r)
	}
}

func replayAgainst(routers []*fleet.SimRouter, pkt []byte) (int, error) {
	transfers := 0
	for _, r := range routers {
		if _, err := r.NP.ProcessOn(0, pkt, 0); err != nil {
			return transfers, err
		}
		hit, err := attack.PersistSucceeded(r.NP, 0)
		if err != nil {
			return transfers, err
		}
		if hit {
			transfers++
		}
		if err := scrubRouter(r); err != nil {
			return transfers, err
		}
	}
	return transfers, nil
}

func scrubRouter(r *fleet.SimRouter) error {
	core, err := r.NP.Core(0)
	if err != nil {
		return err
	}
	core.Mem().WriteBytes(uint32(apps.ScratchBase), make([]byte, 2048))
	return nil
}

func toInt64(v []int) []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = int64(x)
	}
	return out
}

// Checks for the drill: pre-rotation the homogeneous fleet transfers
// everywhere; post-rotation containment collapses the transfer count.
func (r *FleetDrillResult) Check() error {
	if r.CrackAttempts == 0 {
		return fmt.Errorf("fleet drill: no probes spent")
	}
	if r.CrackAttempts > r.ProbeBudget {
		return fmt.Errorf("fleet drill: crack spent %d probes over budget %d",
			r.CrackAttempts, r.ProbeBudget)
	}
	if r.PreTransfer == 0 {
		return nil // cracked nothing: the remaining assertions are vacuous
	}
	if r.PreTransfer != r.Routers {
		return fmt.Errorf("fleet drill: pre-rotation transfer %d/%d, want full homogeneous spread",
			r.PreTransfer, r.Routers)
	}
	if r.RotatedRouters != r.Routers {
		return fmt.Errorf("fleet drill: rotation covered %d/%d routers", r.RotatedRouters, r.Routers)
	}
	if r.PostTransfer >= r.PreTransfer/2 {
		return fmt.Errorf("fleet drill: post-rotation transfer %d of %d — rotation bought no containment",
			r.PostTransfer, r.PreTransfer)
	}
	return nil
}
