package campaign

// Tenant-isolation drill (ROADMAP item 4 leftover, closed by ISSUE 10):
// the gadget and noc attack families fired at ONE tenant of a partitioned
// plane, with a bystander tenant's entire world — per-tenant counters,
// domain statistics, installed software, telemetry bytes — required to be
// byte-identical to a control run in which the attack never happened.
//
// Unlike the family campaigns above, which drive a virtual traffic model,
// this drill runs the real multi-tenant stack end to end: a tenant.Manager
// partitions two real NPs into protection domains, the shard plane
// dispatches by flow class onto per-tenant lanes, and the attacks arrive
// as crafted packets through the front door:
//
//   - noc: a flood of victim-class flows slams the victim tenant's
//     contracted admission (per-tenant soft capacity), producing ECN marks
//     and tail drops on the victim's lanes only — the per-tenant admission
//     gate is LeMay & Gunter's NoC firewall at the ingress plane;
//   - gadget: the paper's stack-smash hijack, re-addressed into the victim
//     tenant's flow space, alarms the victim's monitors until the
//     supervisor quarantines the victim's cores and the victim's lanes
//     fail over.
//
// The bystander tenant runs a different application (udpecho) on its own
// cores throughout, and its packet program is deliberately insensitive to
// queue depth, so its counters are a pure function of its own traffic —
// any cross-tenant interference at all shows up as a byte diff.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"time"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
	"sdmmon/internal/shard"
	"sdmmon/internal/tenant"
)

// Drill shape. The victim's contracted admission is small enough that the
// noc flood must overflow it; the bystander's full budget fits in its
// physical ring so its run is loss-free and deterministic.
const (
	tdShards        = 2
	tdCores         = 4 // per NP: victim owns 0,1; bystander owns 2,3
	tdQueueCap      = 1024
	tdVictimCap     = 32
	tdVictimMark    = 16
	tdCleanPkts     = 200 // per tenant, outside attack phases
	tdSurgePkts     = 600 // noc flood aimed at the victim class
	tdSmashPkts     = 64  // gadget hijack packets
	tdVictim        = 0
	tdBystander     = 1
	tdVictimName    = "victim"
	tdBystanderName = "bystander"
)

// TenantDrillRun is one environment's outcome (hostile or control).
type TenantDrillRun struct {
	Victim    shard.TenantStats
	Bystander shard.TenantStats
	// BystanderBytes is the canonical serialization of every tenant-labeled
	// series belonging to the bystander.
	BystanderBytes []byte
	// BystanderDomains is the bystander's per-NP domain account.
	BystanderDomains []npu.Stats
	// VictimQuarantines sums supervisor quarantines inside the victim's
	// domains.
	VictimQuarantines uint64
}

// tdClassify maps the source address's second octet to the tenant index.
func tdClassify(pkt []byte) int {
	if len(pkt) < 20 {
		return -1
	}
	return int(pkt[13])
}

// tdCleanPkt builds one valid tenant-classed UDP packet.
func tdCleanPkt(tenantIdx int, flow uint16) ([]byte, error) {
	u := &packet.UDP{SrcPort: 2000 + flow, DstPort: 53, Payload: []byte("tenant-drill")}
	p := &packet.IPv4{
		TTL: 64, Proto: packet.ProtoUDP,
		Src:     packet.IP(10, byte(tenantIdx), 0, byte(flow)),
		Dst:     packet.IP(192, 168, 0, 1),
		Payload: u.Marshal(),
	}
	return p.Marshal()
}

// tdRetag moves a crafted packet into a tenant's flow space: rewrite the
// source address's tenant octet and repair the IPv4 header checksum. This
// models the realistic adversary — the attack arrives on the victim's own
// ingress class, because that is the only place the dispatcher will send
// it to the victim's cores.
func tdRetag(pkt []byte, tenantIdx int) []byte {
	out := append([]byte(nil), pkt...)
	out[13] = byte(tenantIdx)
	out[10], out[11] = 0, 0
	ihl := int(out[0]&0x0F) * 4
	var sum uint32
	for i := 0; i+1 < ihl; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(out[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	binary.BigEndian.PutUint16(out[10:], ^uint16(sum))
	return out
}

// drainTenant blocks until a tenant's queues are empty (or its lanes have
// failed over and shed them) — the drill's phase pacing, so attack packets
// actually reach cores instead of tail-dropping behind the previous burst.
func drainTenant(plane *shard.Plane, tenantIdx int) error {
	for i := 0; i < 200000; i++ {
		ts, err := plane.TenantStatsFor(tenantIdx)
		if err != nil {
			return err
		}
		if ts.Backlog == 0 {
			return nil
		}
		time.Sleep(100 * time.Microsecond)
	}
	return fmt.Errorf("campaign: tenant %d backlog never drained", tenantIdx)
}

// runTenantEnv builds one two-tenant environment and drives it through the
// drill's traffic schedule. hostile adds the attack phases; everything the
// bystander experiences is identical either way.
func runTenantEnv(seed int64, hostile bool) (*TenantDrillRun, error) {
	col := obs.New(256)
	nps := make([]*npu.NP, tdShards)
	for i := range nps {
		np, err := npu.New(npu.Config{
			Cores:           tdCores,
			MonitorsEnabled: true,
			Supervisor:      npu.SupervisorConfig{Window: 16, Threshold: 4, ProbationPackets: 8},
			Obs:             col,
			Instance:        fmt.Sprintf("np%d", i),
		})
		if err != nil {
			return nil, err
		}
		nps[i] = np
	}
	mgr, err := tenant.New(tenant.Config{
		NPs: nps,
		Specs: []tenant.Spec{
			{Name: tdVictimName, Cores: []int{0, 1}},
			{Name: tdBystanderName, Cores: []int{2, 3}},
		},
		Classify:      tdClassify,
		QueueCapacity: tdQueueCap,
		MarkThreshold: tdQueueCap,
		Obs:           col,
	})
	if err != nil {
		return nil, err
	}
	param := uint32(seed)*2654435761 + paramSalt
	if err := mgr.Install(tdVictimName, tenant.AppBundle{App: apps.IPv4CM(), Param: param, Sequence: 1}); err != nil {
		return nil, err
	}
	if err := mgr.Install(tdBystanderName, tenant.AppBundle{App: apps.UDPEcho(), Param: param ^ 0xB15D, Sequence: 1}); err != nil {
		return nil, err
	}
	plane := mgr.Plane()
	// The victim's contracted admission — static tenancy configuration,
	// applied identically in hostile and control runs.
	for s := 0; s < tdShards; s++ {
		if err := plane.SetTenantAdmission(s, tdVictim, tdVictimCap, tdVictimMark); err != nil {
			return nil, err
		}
	}

	submitClean := func(tenantIdx, n int) error {
		for i := 0; i < n; i++ {
			pkt, err := tdCleanPkt(tenantIdx, uint16(i%16))
			if err != nil {
				return err
			}
			plane.Submit(pkt)
		}
		return nil
	}

	// Baseline traffic on both tenants.
	if err := submitClean(tdVictim, tdCleanPkts/2); err != nil {
		return nil, err
	}
	if err := submitClean(tdBystander, tdCleanPkts/2); err != nil {
		return nil, err
	}
	if err := drainTenant(plane, tdVictim); err != nil {
		return nil, err
	}

	if hostile {
		// noc phase: flood the victim's flow class across many flows so the
		// burst lands on every shard and overwhelms the victim's contracted
		// admission.
		surge := make([][]byte, 0, tdSurgePkts)
		for i := 0; i < tdSurgePkts; i++ {
			pkt, err := tdCleanPkt(tdVictim, uint16(i%64))
			if err != nil {
				return nil, err
			}
			surge = append(surge, pkt)
		}
		plane.SubmitBatch(surge)
		if err := drainTenant(plane, tdVictim); err != nil {
			return nil, err
		}

		// gadget phase: the canonical stack-smash hijack, re-addressed into
		// the victim's flow space, interleaved with clean victim traffic.
		// Paced so the hijack actually reaches the victim's cores instead of
		// tail-dropping behind its own flood.
		smash := attack.DefaultSmash()
		hijack, err := smash.HijackPayload()
		if err != nil {
			return nil, err
		}
		raw, err := smash.CraftPacket(hijack)
		if err != nil {
			return nil, err
		}
		atk := tdRetag(raw, tdVictim)
		for i := 0; i < tdSmashPkts; i++ {
			plane.Submit(atk)
			if err := submitClean(tdVictim, 1); err != nil {
				return nil, err
			}
			if i%4 == 3 {
				if err := drainTenant(plane, tdVictim); err != nil {
					return nil, err
				}
			}
		}
	}

	// Tail traffic on both tenants: the bystander's world must be unchanged
	// even while the victim's lanes are failing over.
	if err := submitClean(tdBystander, tdCleanPkts/2); err != nil {
		return nil, err
	}
	if err := submitClean(tdVictim, tdCleanPkts/2); err != nil {
		return nil, err
	}
	mgr.Close()

	run := &TenantDrillRun{}
	if run.Victim, err = plane.TenantStatsFor(tdVictim); err != nil {
		return nil, err
	}
	if run.Bystander, err = plane.TenantStatsFor(tdBystander); err != nil {
		return nil, err
	}
	if run.BystanderBytes, err = col.Snapshot().FilterLabel("tenant", tdBystanderName).MarshalCanonical(); err != nil {
		return nil, err
	}
	for _, np := range nps {
		ds, err := np.StatsDomain(tdBystanderName)
		if err != nil {
			return nil, err
		}
		run.BystanderDomains = append(run.BystanderDomains, ds)
		vs, err := np.StatsDomain(tdVictimName)
		if err != nil {
			return nil, err
		}
		run.VictimQuarantines += vs.Quarantines
	}
	return run, nil
}

// TenantIsolationDrill runs the hostile and control environments and
// asserts the isolation contract. Returned error text names the first
// violated property; nil means the drill passed. This is the self-check
// behind `npsim -tenant`.
func TenantIsolationDrill(seed int64) error {
	hostile, err := runTenantEnv(seed, true)
	if err != nil {
		return fmt.Errorf("campaign: tenant drill (hostile): %w", err)
	}
	control, err := runTenantEnv(seed, false)
	if err != nil {
		return fmt.Errorf("campaign: tenant drill (control): %w", err)
	}

	// Both runs conserve per-tenant packet accounting.
	for _, r := range []*TenantDrillRun{hostile, control} {
		if !r.Victim.Conserved() || !r.Bystander.Conserved() {
			return fmt.Errorf("campaign: tenant drill conservation violated: victim %+v bystander %+v",
				r.Victim, r.Bystander)
		}
	}

	// The attack was detected and responded to on the victim's domain.
	if hostile.Victim.Alarms == 0 {
		return fmt.Errorf("campaign: gadget attack raised no alarms on the victim")
	}
	if hostile.VictimQuarantines == 0 {
		return fmt.Errorf("campaign: victim detection fired no quarantine response")
	}
	if hostile.Victim.TailDrops+hostile.Victim.Marked == 0 {
		return fmt.Errorf("campaign: noc flood produced no admission pressure on the victim")
	}
	// The control victim saw none of that.
	if control.Victim.Alarms != 0 || control.VictimQuarantines != 0 {
		return fmt.Errorf("campaign: control run shows attack artifacts: %+v", control.Victim)
	}

	// The isolation contract: the bystander's counters, domain statistics
	// and telemetry bytes are identical whether or not the neighbor was
	// under attack.
	if !reflect.DeepEqual(hostile.Bystander, control.Bystander) {
		return fmt.Errorf("campaign: bystander per-tenant counters perturbed by the attack:\nhostile %+v\ncontrol %+v",
			hostile.Bystander, control.Bystander)
	}
	if !reflect.DeepEqual(hostile.BystanderDomains, control.BystanderDomains) {
		return fmt.Errorf("campaign: bystander domain stats perturbed by the attack:\nhostile %+v\ncontrol %+v",
			hostile.BystanderDomains, control.BystanderDomains)
	}
	if !bytes.Equal(hostile.BystanderBytes, control.BystanderBytes) {
		return fmt.Errorf("campaign: bystander telemetry bytes perturbed by the attack:\nhostile %s\ncontrol %s",
			hostile.BystanderBytes, control.BystanderBytes)
	}
	// And the bystander lost nothing: same loss-free throughput either way.
	if hostile.Bystander.Forwarded != uint64(tdCleanPkts) || hostile.Bystander.TailDrops != 0 {
		return fmt.Errorf("campaign: bystander throughput degraded: %+v", hostile.Bystander)
	}
	return nil
}
