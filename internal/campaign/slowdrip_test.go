package campaign

import (
	"testing"

	"sdmmon/internal/threat"
)

// Regression for SlowDripDutyFloor: a drip whose realized per-tick rate
// stays below Up[Medium]×MinStd = 0.24 must never escalate past LOW, and
// one comfortably above it must escalate. The two fixed duties bracket
// the documented floor with quantization margin (0.10 realizes at most
// 0.125 on the 8-packet quota; 0.50 realizes 0.5).
func TestSlowDripDutyFloorRegression(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		below, err := RunCampaign(Config{Family: FamilySlowDrip, Seed: seed, Duty: 0.10})
		if err != nil {
			t.Fatal(err)
		}
		if below.Peak > threat.Low {
			t.Errorf("seed %d: duty 0.10 (< floor %.2f) escalated to %v, want <= LOW",
				seed, SlowDripDutyFloor, below.Peak)
		}
		if len(below.Incidents) != 0 {
			t.Errorf("seed %d: duty 0.10 captured %d incidents, want none below the floor",
				seed, len(below.Incidents))
		}
		if below.SlowDrip == nil || below.SlowDrip.SlippedPackets == 0 {
			t.Errorf("seed %d: sub-floor drip recorded no slipped packets: %+v",
				seed, below.SlowDrip)
		}
		if err := below.Check(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}

		above, err := RunCampaign(Config{Family: FamilySlowDrip, Seed: seed, Duty: 0.50})
		if err != nil {
			t.Fatal(err)
		}
		if above.Peak < threat.Medium {
			t.Errorf("seed %d: duty 0.50 (> floor %.2f) peaked at %v, want >= MEDIUM",
				seed, SlowDripDutyFloor, above.Peak)
		}
		if above.PacketsToDetect < 0 {
			t.Errorf("seed %d: duty 0.50 never latched detection", seed)
		}
		t.Logf("seed %d: below floor peak=%v slipped=%d; above floor peak=%v detect@%d",
			seed, below.Peak, below.SlowDrip.SlippedPackets, above.Peak, above.PacketsToDetect)
	}
}

// The adaptive titration's frontier must sit below the analytic floor:
// the engine concedes no more than the realized-rate bound predicts.
func TestSlowDripFrontierBelowFloor(t *testing.T) {
	r, err := RunCampaign(Config{Family: FamilySlowDrip, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	if r.SlowDrip.FrontierDuty >= SlowDripDutyFloor {
		t.Errorf("adaptive frontier %.4f at or above the analytic floor %.2f",
			r.SlowDrip.FrontierDuty, SlowDripDutyFloor)
	}
}
