package campaign

import (
	"fmt"

	"sdmmon/internal/attack"
	"sdmmon/internal/isa"
	"sdmmon/internal/npu"
	"sdmmon/internal/threat"
)

// The gadget family mounts ROP-style control-flow attacks: every mutant is
// a chain of consecutive *legitimate* app instructions (a gadget) lifted
// from the installed binary, delivered through the stack-smash overflow,
// and terminated by a break word that diverts to attacker behaviour. The
// monitor does not check instruction provenance — only that the hash
// stream matches the expected stream from the hijacked return site — so a
// gadget evades exactly as far as its words happen to hash-collide with
// the straight-line fall-through the monitor expects. The campaign walks a
// duty staircase (1/8 → 1/4 → 1/2 → 1) until the classifier isolates the
// attacked core.

// gadgetPhaseTicks is the residency of each staircase step.
const gadgetPhaseTicks = 6

var gadgetDuties = []float64{1.0 / 8, 1.0 / 4, 1.0 / 2, 1}

type gadgetDriver struct {
	pkts     [][]byte
	outcomes []MutantOutcome
	next     int // round-robin cursor over the mutant pool
}

func newGadgetDriver(c *campaign) (driver, error) {
	cws := c.prog.CodeWords()
	if len(cws) < 8 {
		return nil, fmt.Errorf("campaign: program too small for gadget chains")
	}
	retSite, err := attack.ReturnSiteAfterEntryCall(c.prog)
	if err != nil {
		return nil, err
	}
	// The hash stream the monitor expects after the smashed return: the
	// straight-line fall-through from the hijacked call's return site. A
	// chain's evasion depth is its matched prefix against this stream.
	var expect []uint8
	for a := retSite; ; a += 4 {
		w, ok := c.prog.WordAt(a)
		if !ok {
			break
		}
		expect = append(expect, c.hasher.Hash(uint32(w)))
	}
	// The break word ends every chain with attacker behaviour — the first
	// word of the canonical hijack payload — so even a fully colliding
	// chain diverges eventually.
	hijack, err := c.smash.HijackPayload()
	if err != nil {
		return nil, err
	}
	brk := hijack[0]

	d := &gadgetDriver{}
	for i := 0; i < c.spec.Mutants; i++ {
		n := c.rng.between(2, 6)
		start := c.rng.intn(len(cws) - n)
		words := make([]isa.Word, 0, n+1)
		for k := 0; k < n; k++ {
			words = append(words, cws[start+k].W)
		}
		words = append(words, brk)
		depth := 0
		for k := 0; k < len(words) && k < len(expect); k++ {
			if c.hasher.Hash(uint32(words[k])) != expect[k] {
				break
			}
			depth++
		}
		pkt, err := c.smash.CraftPacket(words)
		if err != nil {
			return nil, err
		}
		d.pkts = append(d.pkts, pkt)
		d.outcomes = append(d.outcomes, MutantOutcome{
			Index: i,
			Kind:  fmt.Sprintf("chain@%#x+%d", cws[start].Addr, n),
			Tick:  -1,
			Depth: depth,
		})
	}
	return d, nil
}

func (d *gadgetDriver) detectLevel() threat.Level { return threat.High }
func (d *gadgetDriver) attackShard() int          { return 0 }
func (d *gadgetDriver) attackCores() []int        { return []int{1} }

func (d *gadgetDriver) duty(t int) float64 {
	if t < Warmup {
		return 0
	}
	step := (t - Warmup) / gadgetPhaseTicks
	if step >= len(gadgetDuties) {
		step = len(gadgetDuties) - 1
	}
	return gadgetDuties[step]
}

func (d *gadgetDriver) surge(t int) (int, int) { return -1, 0 }

func (d *gadgetDriver) craft(c *campaign, t, shard, core int) (int, []byte, bool, error) {
	mi := d.next % len(d.pkts)
	d.next++
	return mi, d.pkts[mi], true, nil
}

func (d *gadgetDriver) observe(c *campaign, t, shard, core, mi int, res npu.Result) error {
	o := &d.outcomes[mi]
	if o.Tick < 0 {
		o.Tick = t
	}
	o.Packets++
	if res.Detected {
		o.Detected = true
	}
	return nil
}

func (d *gadgetDriver) afterTick(c *campaign, t int, lvl threat.Level) error { return nil }

func (d *gadgetDriver) finish(c *campaign) {
	c.res.Mutants = d.outcomes
	// Aggregate evasion depth: mean matched-prefix length over the mutants
	// that ran and were never alarmed on (deep chains that also collided).
	var sum, n float64
	for _, o := range d.outcomes {
		if o.Packets > 0 && !o.Detected {
			sum += float64(o.Depth)
			n++
		}
	}
	if n > 0 {
		c.res.EvasionDepth = sum / n
	}
}

func checkGadget(r *Result) error {
	if r.Peak < threat.High {
		return fmt.Errorf("gadget: peak %v, want >= HIGH", r.Peak)
	}
	if r.LockdownFired {
		return fmt.Errorf("gadget: lockdown fired on a core-local attack")
	}
	if r.IsolatedCores < 1 {
		return fmt.Errorf("gadget: no core isolated at HIGH")
	}
	if len(r.Incidents) < 1 {
		return fmt.Errorf("gadget: no incident captured")
	}
	if r.PacketsToDetect < 0 {
		return fmt.Errorf("gadget: never reached detection level")
	}
	if r.Final > threat.Low {
		return fmt.Errorf("gadget: final level %v, want <= LOW after isolation", r.Final)
	}
	executed := 0
	for _, m := range r.Mutants {
		if m.Packets > 0 {
			executed++
		}
	}
	if executed < len(r.Mutants)/2 {
		return fmt.Errorf("gadget: only %d/%d mutants executed", executed, len(r.Mutants))
	}
	if r.MutantsDetected*10 < executed*8 {
		return fmt.Errorf("gadget: %d/%d executed mutants detected, want >= 80%%",
			r.MutantsDetected, executed)
	}
	return nil
}
