package campaign

import (
	"hash/fnv"

	"sdmmon/internal/isa"
)

// rng is the campaign's private deterministic generator: every mutation
// decision draws from it, so the mutant stream is a pure function of
// (seed, family) and a campaign replays byte-identically. The package
// deliberately avoids math/rand in non-test paths, matching the attack
// package's idiom.
type rng struct{ s uint64 }

func newRNG(seed int64, label string) *rng {
	h := fnv.New64a()
	h.Write([]byte(label))
	return &rng{s: (uint64(seed)*2862933555777941757 + 3037000493) ^ h.Sum64()}
}

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 16
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// between returns a value in [lo, hi] inclusive.
func (r *rng) between(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.intn(hi-lo+1)
}

// shuffleWords permutes an instruction-word slice in place
// (Fisher–Yates).
func (r *rng) shuffleWords(w []isa.Word) {
	for i := len(w) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		w[i], w[j] = w[j], w[i]
	}
}
