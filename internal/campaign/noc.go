package campaign

import (
	"fmt"

	"sdmmon/internal/npu"
	"sdmmon/internal/threat"
)

// The NoC family aims malicious cross-shard traffic bursts at the plane's
// admission/ECN path — the NoC-firewall attack class: no packet carries
// attack code, the weapon is traffic shape. Each mutant is a burst
// (target shard, intensity, length) drawn by the campaign seed from one of
// two regimes straddling the congestion threshold: evade bursts sized so
// the queue never reaches the ECN mark point (zero backpressure signal),
// and detect bursts that overrun service and force marks and tail drops.
// Bursts rotate across shards, so the classifier's per-shard backpressure
// baselines are each exercised; gaps between bursts let the level decay
// and the Relax response restore tightened admission before the next one.

// nocBurst is one scheduled burst mutant.
type nocBurst struct {
	shard     int
	start     int
	length    int
	intensity int // extra arrivals per tick aimed at the shard
	evade     bool
}

const (
	// Evade bursts: 30 base + at most 17 extra arrivals against a drain of
	// 40 queues at most 7 per tick for at most 4 ticks — depth stays below
	// the mark point (32), and the 4-tick gap drains the backlog.
	nocEvadeSlot = 8
	// Detect bursts: 50..90 extra arrivals overrun service within two
	// ticks; the 10-tick gap lets MEDIUM decay and admission restore.
	nocDetectSlot = 14
	nocTail       = 14
)

type nocDriver struct {
	bursts   []nocBurst
	outcomes []MutantOutcome
}

func newNoCDriver(c *campaign) (driver, error) {
	d := &nocDriver{}
	evades := (c.spec.Mutants + 1) / 2
	tick := Warmup
	for i := 0; i < c.spec.Mutants; i++ {
		b := nocBurst{
			shard:  i % c.spec.Shards,
			start:  tick,
			length: c.rng.between(2, 4),
			evade:  i < evades,
		}
		if b.evade {
			b.intensity = c.rng.between(12, 17)
			tick += nocEvadeSlot
		} else {
			b.intensity = c.rng.between(50, 90)
			tick += nocDetectSlot
		}
		d.bursts = append(d.bursts, b)
		kind := "detect-burst"
		if b.evade {
			kind = "evade-burst"
		}
		d.outcomes = append(d.outcomes, MutantOutcome{
			Index: i,
			Kind:  fmt.Sprintf("%s@shard%d:i%d×%d", kind, b.shard, b.intensity, b.length),
			Tick:  b.start,
		})
	}
	return d, nil
}

func (d *nocDriver) detectLevel() threat.Level { return threat.Medium }
func (d *nocDriver) attackShard() int          { return -1 }
func (d *nocDriver) attackCores() []int        { return nil }
func (d *nocDriver) duty(t int) float64        { return 0 }

func (d *nocDriver) surge(t int) (int, int) {
	for _, b := range d.bursts {
		if t >= b.start && t < b.start+b.length {
			return b.shard, b.intensity
		}
	}
	return -1, 0
}

func (d *nocDriver) craft(c *campaign, t, shard, core int) (int, []byte, bool, error) {
	return 0, nil, false, nil
}

func (d *nocDriver) observe(c *campaign, t, shard, core, mi int, res npu.Result) error {
	return nil
}

func (d *nocDriver) afterTick(c *campaign, t int, lvl threat.Level) error {
	for i, b := range d.bursts {
		if t >= b.start && t < b.start+b.length {
			d.outcomes[i].Packets += b.intensity
		}
		// Attribution window: a burst owns escalations up to two ticks past
		// its end (queue pressure outlives the last arrival).
		if lvl >= threat.Medium && t >= b.start && t <= b.start+b.length+2 {
			d.outcomes[i].Detected = true
		}
	}
	return nil
}

func (d *nocDriver) finish(c *campaign) {
	c.res.Mutants = d.outcomes
	// Evasion depth: packets the undetected bursts pushed through without
	// tripping the backpressure classifier.
	var sum, n float64
	for _, o := range d.outcomes {
		if !o.Detected {
			sum += float64(o.Packets)
			n++
		}
	}
	if n > 0 {
		c.res.EvasionDepth = sum / n
	}
}

func checkNoC(r *Result) error {
	if r.Peak < threat.Medium {
		return fmt.Errorf("noc: peak %v, want >= MEDIUM from detect bursts", r.Peak)
	}
	if r.AdmissionTightened < 1 {
		return fmt.Errorf("noc: admission never tightened at MEDIUM")
	}
	if r.LockdownFired {
		return fmt.Errorf("noc: lockdown fired on a congestion-only campaign")
	}
	if r.Stats.Marked == 0 {
		return fmt.Errorf("noc: detect bursts produced no ECN marks")
	}
	var detected, evaded int
	for _, m := range r.Mutants {
		if m.Detected {
			detected++
		} else {
			evaded++
		}
	}
	if detected == 0 {
		return fmt.Errorf("noc: no burst detected")
	}
	if evaded == 0 {
		return fmt.Errorf("noc: no burst evaded — the evade regime failed")
	}
	if r.Final > threat.Low {
		return fmt.Errorf("noc: final level %v, want decay to <= LOW", r.Final)
	}
	return nil
}
