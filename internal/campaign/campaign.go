// Package campaign implements the adversarial attack-campaign engine: a
// seeded, mutation-driven corpus of attack families run as deterministic
// fault injection against real monitored NPs, the modeled traffic plane,
// and the live threat classifier. The paper demonstrates *that* the
// hardware monitor detects its stack-smash attack; this package measures
// *how fast* and against *what diversity* — packets-to-detection
// distributions per family, and evasion depth for the mutants that slip
// through.
//
// Where the threat package's drills poison installed instructions, every
// campaign here attacks through the front door: real crafted packets
// (stack-smash overflows carrying mutated payloads) processed by real
// monitored cores, traffic bursts aimed at the admission/ECN path, and
// collision probes against the live Merkle hash parameter. A campaign is a
// pure function of its Spec: the same seed reproduces the same mutation
// sequence, detection trajectory, and incident bytes.
package campaign

import (
	"fmt"

	"sdmmon/internal/apps"
	"sdmmon/internal/asm"
	"sdmmon/internal/attack"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
	"sdmmon/internal/threat"
)

// Campaign families — the attack taxonomy from the related work.
const (
	// FamilyGadget mounts ROP-style gadget-chain control-flow attacks:
	// chains of legitimate app instruction sequences (R5Detect's family)
	// delivered through the stack-smash overflow, walking a duty staircase
	// until the classifier isolates the core.
	FamilyGadget = "gadget"
	// FamilyCollision runs a budget-capped partial-hash collision search
	// against the live Merkle parameter: seeded store variants probed until
	// one lands persistent corruption or the search budget exhausts.
	FamilyCollision = "collision"
	// FamilySlowDrip adaptively titrates the poison duty cycle against the
	// engine's EWMA baselines, finding the highest duty that stays at or
	// below LOW (the evasion frontier) before retreating.
	FamilySlowDrip = "slowdrip"
	// FamilyNoC aims malicious cross-shard traffic bursts at the plane's
	// admission/ECN path (LeMay & Gunter's NoC-firewall family): mutated
	// burst intensities straddling the congestion-detection threshold.
	FamilyNoC = "noc"
	// FamilyPoison trains the EWMA baseline with a slow ramp before
	// striking — the adversarial baseline-poisoning case FreezeAt exists
	// to contain.
	FamilyPoison = "poison"
)

// Families lists the campaign families in canonical order.
func Families() []string {
	return []string{FamilyGadget, FamilyCollision, FamilySlowDrip, FamilyNoC, FamilyPoison}
}

// Config parameterizes a campaign; zero fields select family defaults.
// ResolveSpec turns a Config into the canonical wire Spec.
type Config struct {
	Family string
	Seed   int64
	// Shards and Cores size the modeled plane; 0 selects 3 shards of 4
	// cores.
	Shards int
	Cores  int
	// Ticks is the campaign length in virtual ticks; 0 selects the family
	// default.
	Ticks int
	// PacketsPerTick is the plane-wide arrival rate; 0 selects 30 per
	// shard.
	PacketsPerTick int
	// Mutants sizes the mutation pool (gadget chains, noc bursts); 0
	// selects the family default.
	Mutants int
	// ProbeBudget / CycleBudget cap the collision family's search
	// (attack.SearchBudget semantics); 0 selects 192 probes, uncapped
	// cycles.
	ProbeBudget int
	CycleBudget uint64
	// Compression selects the Merkle compression: "sbox" (default — the
	// containment-bearing nonlinear compression) or "sum" (the paper's
	// collapse-prone arithmetic sum).
	Compression string
	// Duty, when > 0, pins the slowdrip family to a fixed duty cycle after
	// warmup instead of the adaptive titration — the regression fixture
	// for SlowDripDutyFloor.
	Duty float64
	// FreezeAt overrides the engine's baseline-freeze level; zero keeps
	// the campaign default (threat.Low). The poison family's FreezeAt
	// tests set threat.Critical to model an engine without containment.
	FreezeAt threat.Level
}

// Campaign model tuning, mirroring the threat package's synchronous drill:
// per-shard ingress queue and service rates in packets per tick. Service
// exceeds the nominal arrival rate, so backpressure appears only under a
// genuine surge.
const (
	queueCap  = 64
	markAt    = 32
	drainRate = 40
	// Warmup is the clean ticks most families run before attacking, giving
	// the EWMA baselines a quiet floor (the poison family deliberately
	// skips it — training the baseline is its attack).
	Warmup = 12
)

// paramSalt derives the campaign's hidden hash parameter from the seed,
// distinct from the threat (0x7417) and bench (0x600D) streams.
const paramSalt = 0xCAFE

// Stats is the campaign model's packet accounting. Conservation:
// Arrived == Processed + TailDrops + Starved + Backlog.
type Stats struct {
	Arrived   uint64
	Processed uint64
	TailDrops uint64
	Marked    uint64
	Starved   uint64
	Backlog   uint64
	Alarms    uint64
	Faults    uint64
}

// Conserved checks the model's packet conservation.
func (s Stats) Conserved() bool {
	return s.Arrived == s.Processed+s.TailDrops+s.Starved+s.Backlog
}

// MutantOutcome records one mutant's fate: what it was, how many packets
// it injected, whether the classifier caught it, and how deep it got.
type MutantOutcome struct {
	Index int    `json:"index"`
	Kind  string `json:"kind"`
	// Tick is when the mutant first ran.
	Tick int `json:"tick"`
	// Packets it injected (attack packets, or extra arrivals for bursts).
	Packets int `json:"packets"`
	// Detected: the classifier reached the family's detection level while
	// this mutant was active (bursts), or the monitor alarmed on its
	// packets (code-carrying mutants).
	Detected bool `json:"detected"`
	// Depth is the family's evasion-depth metric for this mutant: matched
	// hash-prefix length for gadget chains, packets slipped for drips and
	// evading bursts.
	Depth int `json:"depth"`
}

// CollisionMetrics is the collision family's search-effort summary
// (attack.SearchStats without the host-timing WallSeconds, which must stay
// out of the deterministic replay bytes).
type CollisionMetrics struct {
	Attempts   int    `json:"attempts"`
	Cycles     uint64 `json:"cycles"`
	Exhausted  bool   `json:"exhausted"`
	Found      bool   `json:"found"`
	FoundProbe int    `json:"found_probe"` // -1 when the budget exhausted first
}

// SlowDripMetrics is the slowdrip family's titration summary.
type SlowDripMetrics struct {
	// FrontierDuty is the highest duty cycle the adaptive search sustained
	// at or below LOW.
	FrontierDuty float64 `json:"frontier_duty"`
	// SlippedPackets counts attack packets processed while the classifier
	// sat at or below LOW.
	SlippedPackets int64 `json:"slipped_packets"`
	Epochs         int   `json:"epochs"`
	Retreated      bool  `json:"retreated"`
}

// Result is everything a campaign run produced. ReplayBytes serializes it
// canonically; two runs of the same Spec must be byte-identical.
type Result struct {
	Family string `json:"family"`
	Seed   int64  `json:"seed"`
	Spec   Spec   `json:"spec"`

	Trajectory    []threat.LevelTransition `json:"trajectory"`
	Incidents     []threat.IncidentRecord  `json:"incidents"`
	IncidentBytes []byte                   `json:"incident_bytes"`
	Peak          threat.Level             `json:"peak"`
	Final         threat.Level             `json:"final"`
	Stats         Stats                    `json:"stats"`

	// PacketsToLevel[l] is how many packets had arrived when the
	// classifier first reached level l; -1 if it never did.
	PacketsToLevel [threat.NumLevels]int64 `json:"packets_to_level"`
	// PacketsToDetect is the arrivals count when the classifier first
	// reached the family's detection level; -1 if the campaign evaded.
	PacketsToDetect int64 `json:"packets_to_detect"`

	Mutants         []MutantOutcome `json:"mutants"`
	MutantsDetected int             `json:"mutants_detected"`
	// EvasionDepth is the family's aggregate depth metric for undetected
	// mutants (mean matched prefix, frontier duty, or slipped packets).
	EvasionDepth float64 `json:"evasion_depth"`

	Collision *CollisionMetrics `json:"collision,omitempty"`
	SlowDrip  *SlowDripMetrics  `json:"slowdrip,omitempty"`

	// Response summary.
	IsolatedCores      int  `json:"isolated_cores"`
	FailedShards       int  `json:"failed_shards"`
	AdmissionTightened int  `json:"admission_tightened"`
	LockdownFired      bool `json:"lockdown_fired"`
	StagedZeroized     bool `json:"staged_zeroized"`
	StagedLeft         int  `json:"staged_left"`
}

// driver is one family's attack logic plugged into the shared chassis.
type driver interface {
	// detectLevel is the threat level at which the family counts as
	// detected (PacketsToDetect latches when the classifier first reaches
	// it).
	detectLevel() threat.Level
	// attackShard/attackCores name where this tick's packet attack lands;
	// empty cores means the family attacks through traffic shape only.
	attackShard() int
	attackCores() []int
	// duty is the attack share of the attacked cores' packets at a tick.
	duty(t int) float64
	// surge returns extra arrivals aimed at a shard this tick.
	surge(t int) (shard, extra int)
	// craft produces the next attack packet for an attack slot; ok=false
	// downgrades the remaining slots this tick to clean traffic.
	craft(c *campaign, t, shard, core int) (mi int, pkt []byte, ok bool, err error)
	// observe sees the processed result of a crafted packet.
	observe(c *campaign, t, shard, core, mi int, res npu.Result) error
	// afterTick runs once per tick with the engine's post-tick level.
	afterTick(c *campaign, t int, lvl threat.Level) error
	// finish fills family metrics into c.res after the last tick.
	finish(c *campaign)
}

// campaign is the run state; it implements threat.Responder so the
// engine's graded responses mutate the model it is watching.
type campaign struct {
	spec Spec
	drv  driver

	nps  []*npu.NP
	cols []*obs.Collector
	gen  *packet.Generator
	rng  *rng

	appName string
	prog    *asm.Program
	bin, gb []byte
	param   uint32
	hasher  mhash.Hasher
	smash   attack.SmashConfig

	alive    []bool
	isolated [][]bool
	depth    []int
	capac    []int
	markAt   []int
	origAdm  map[int][2]int
	lockdown bool

	// per-shard cumulative accounting
	arrived, processed, tailDrops, marked, starved []uint64
	alarms, faults                                 []uint64

	// atkAcc is the attacked cores' duty-cycle error-diffusion accumulator.
	atkAcc map[int]float64
	// atkTick counts attack packets processed in the current tick (drivers
	// read it in afterTick for slip accounting).
	atkTick int
	// lastLevel is the engine level after the previous tick.
	lastLevel threat.Level

	res Result
}

// Responder implementation: the model mirror of threat.PlaneResponder.

func (c *campaign) TightenAdmission(shard int) error {
	if shard < 0 || shard >= len(c.capac) {
		return fmt.Errorf("campaign: no shard %d", shard)
	}
	if _, ok := c.origAdm[shard]; !ok {
		c.origAdm[shard] = [2]int{c.capac[shard], c.markAt[shard]}
	}
	c.capac[shard] = max(1, c.capac[shard]/2)
	c.markAt[shard] = max(1, min(c.markAt[shard]/2, c.capac[shard]))
	c.res.AdmissionTightened++
	return nil
}

func (c *campaign) IsolateCore(shard, core int) error {
	if shard < 0 || shard >= len(c.nps) {
		return fmt.Errorf("campaign: no shard %d", shard)
	}
	if err := c.nps[shard].Quarantine(core); err != nil {
		return err
	}
	if !c.isolated[shard][core] {
		c.isolated[shard][core] = true
		c.res.IsolatedCores++
	}
	return nil
}

func (c *campaign) RehashShard(shard int) error {
	if shard < 0 || shard >= len(c.alive) {
		return fmt.Errorf("campaign: no shard %d", shard)
	}
	if c.alive[shard] {
		c.alive[shard] = false
		// Shed the queue as starved drops, mirroring the plane's failover.
		c.starved[shard] += uint64(c.depth[shard])
		c.depth[shard] = 0
		c.res.FailedShards++
	}
	return nil
}

func (c *campaign) ZeroizeStaged() error {
	for _, np := range c.nps {
		np.AbortAllStaged()
	}
	c.res.StagedZeroized = true
	return nil
}

func (c *campaign) Lockdown() error {
	c.lockdown = true
	c.res.LockdownFired = true
	return nil
}

func (c *campaign) Relax(to threat.Level) error {
	if to < threat.Critical {
		c.lockdown = false
	}
	if to >= threat.Medium {
		return nil
	}
	for shard, adm := range c.origAdm {
		c.capac[shard], c.markAt[shard] = adm[0], adm[1]
	}
	c.origAdm = map[int][2]int{}
	return nil
}

// activeCores lists a shard's non-isolated cores, ascending.
func (c *campaign) activeCores(shard int) []int {
	var out []int
	for core := 0; core < c.spec.Cores; core++ {
		if !c.isolated[shard][core] {
			out = append(out, core)
		}
	}
	return out
}

// scrubScratch zeroes a core's scratch region — the collision family's
// between-probe reset (the operator reimages after each detected probe;
// the attacker still wins the moment one store slips through first).
func (c *campaign) scrubScratch(shard, core int) error {
	cr, err := c.nps[shard].Core(core)
	if err != nil {
		return err
	}
	cr.Mem().WriteBytes(uint32(apps.ScratchBase), make([]byte, 2048))
	return nil
}

// coreTally is one core's per-tick packet accounting.
type coreTally struct {
	packets, alarms, outliers uint64
}

func (t *coreTally) count(c *campaign, shard int, res npu.Result) {
	t.packets++
	c.processed[shard]++
	if res.Detected {
		t.alarms++
		c.alarms[shard]++
	}
	if res.Faulted {
		c.faults[shard]++
	}
	if float64(res.Cycles) > 2048 {
		t.outliers++
	}
}

// RunCampaign resolves the config and executes one seeded campaign.
// Deterministic: same config, same result, byte for byte.
func RunCampaign(cfg Config) (*Result, error) {
	spec, err := ResolveSpec(cfg)
	if err != nil {
		return nil, err
	}
	return RunSpec(spec)
}

// RunSpec executes a campaign from its canonical resolved spec — the entry
// point replays use after decoding wire bytes.
func RunSpec(spec Spec) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}

	app, err := apps.ByName("ipv4cm")
	if err != nil {
		return nil, err
	}
	prog, err := app.Program()
	if err != nil {
		return nil, err
	}
	param := uint32(spec.Seed)*2654435761 + paramSalt
	mk, err := hasherMaker(spec.Compression)
	if err != nil {
		return nil, err
	}
	h := mk(param)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		return nil, err
	}

	c := &campaign{
		spec:    spec,
		gen:     packet.NewGenerator(spec.Seed),
		rng:     newRNG(spec.Seed, "campaign-"+spec.Family),
		appName: "ipv4cm", prog: prog,
		bin: prog.Serialize(), gb: g.Serialize(),
		param: param, hasher: h,
		smash:   attack.DefaultSmash(),
		origAdm: map[int][2]int{}, atkAcc: map[int]float64{},
	}
	c.res = Result{Family: spec.Family, Seed: spec.Seed, Spec: spec, PacketsToDetect: -1}
	for l := range c.res.PacketsToLevel {
		c.res.PacketsToLevel[l] = -1
	}
	c.res.PacketsToLevel[threat.None] = 0

	for i := 0; i < spec.Shards; i++ {
		// No per-core supervisor: the threat engine is the only quarantine
		// authority, so the trajectory measures its response alone.
		col := obs.New(256)
		np, err := npu.New(npu.Config{
			Cores: spec.Cores, MonitorsEnabled: true, Obs: col, NewHasher: mk,
		})
		if err != nil {
			return nil, err
		}
		if err := np.InstallAll(c.appName, c.bin, c.gb, param); err != nil {
			return nil, err
		}
		// Stage an upgrade bundle so the zeroize_staged response has
		// something real to discard.
		if err := np.StageInstallAll(c.appName, c.bin, c.gb, param); err != nil {
			return nil, err
		}
		c.nps = append(c.nps, np)
		c.cols = append(c.cols, col)
		c.alive = append(c.alive, true)
		c.isolated = append(c.isolated, make([]bool, spec.Cores))
		c.depth = append(c.depth, 0)
		c.capac = append(c.capac, queueCap)
		c.markAt = append(c.markAt, markAt)
	}
	n := spec.Shards
	c.arrived = make([]uint64, n)
	c.processed = make([]uint64, n)
	c.tailDrops = make([]uint64, n)
	c.marked = make([]uint64, n)
	c.starved = make([]uint64, n)
	c.alarms = make([]uint64, n)
	c.faults = make([]uint64, n)

	if c.drv, err = newDriver(c); err != nil {
		return nil, err
	}

	ecfg := threat.CampaignEngineConfig()
	ecfg.Responder = c
	ecfg.Forensics = c.cols
	ecfg.StatsFn = c.statsMap
	if spec.FreezeAt != 0 {
		ecfg.FreezeAt = spec.FreezeAt
	}
	eng, err := threat.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}

	detectAt := c.drv.detectLevel()
	for t := 0; t < spec.Ticks; t++ {
		c.atkTick = 0
		samples, err := c.tick(t)
		if err != nil {
			return nil, err
		}
		tr, err := eng.Tick(threat.Tick(t), samples)
		if err != nil {
			return nil, err
		}
		if tr != nil && tr.To > tr.From {
			for l := tr.From + 1; l <= tr.To; l++ {
				if c.res.PacketsToLevel[l] < 0 {
					c.res.PacketsToLevel[l] = int64(c.totalArrived())
				}
			}
			if tr.To >= detectAt && c.res.PacketsToDetect < 0 {
				c.res.PacketsToDetect = int64(c.totalArrived())
			}
		}
		lvl := eng.Level()
		if lvl > c.res.Peak {
			c.res.Peak = lvl
		}
		if err := c.drv.afterTick(c, t, lvl); err != nil {
			return nil, err
		}
		c.lastLevel = lvl
	}

	c.res.Trajectory = eng.Trajectory()
	c.res.Incidents = eng.Incidents()
	if c.res.IncidentBytes, err = eng.IncidentBytes(); err != nil {
		return nil, err
	}
	c.res.Final = eng.Level()
	c.res.Stats = c.totalStats()
	for _, np := range c.nps {
		for core := 0; core < spec.Cores; core++ {
			if np.HasStaged(core) {
				c.res.StagedLeft++
			}
		}
	}
	c.drv.finish(c)
	for _, m := range c.res.Mutants {
		if m.Detected {
			c.res.MutantsDetected++
		}
	}
	return &c.res, nil
}

// Check asserts the family's expected outcome — the self-assertions the
// npsim -campaign drill exits non-zero on. When Spec.FreezeAt overrides
// the campaign default, only the structural invariants are enforced: the
// override exists precisely to study degraded-containment trajectories.
func (r *Result) Check() error {
	if !r.Stats.Conserved() {
		return fmt.Errorf("campaign: %s packet conservation violated: %+v", r.Family, r.Stats)
	}
	if r.Spec.FreezeAt != 0 {
		return nil
	}
	switch r.Family {
	case FamilyGadget:
		return checkGadget(r)
	case FamilyCollision:
		return checkCollision(r)
	case FamilySlowDrip:
		return checkSlowDrip(r)
	case FamilyNoC:
		return checkNoC(r)
	case FamilyPoison:
		return checkPoison(r)
	}
	return fmt.Errorf("campaign: unknown family %q", r.Family)
}

func (c *campaign) totalArrived() uint64 {
	var v uint64
	for _, a := range c.arrived {
		v += a
	}
	return v
}

func (c *campaign) totalStats() Stats {
	var s Stats
	for i := range c.arrived {
		s.Arrived += c.arrived[i]
		s.Processed += c.processed[i]
		s.TailDrops += c.tailDrops[i]
		s.Marked += c.marked[i]
		s.Starved += c.starved[i]
		s.Backlog += uint64(c.depth[i])
		s.Alarms += c.alarms[i]
		s.Faults += c.faults[i]
	}
	return s
}

// statsMap feeds the engine's incident stats-delta capture.
func (c *campaign) statsMap() map[string]uint64 {
	s := c.totalStats()
	return map[string]uint64{
		"arrived":    s.Arrived,
		"processed":  s.Processed,
		"tail_drops": s.TailDrops,
		"marked":     s.Marked,
		"starved":    s.Starved,
		"alarms":     s.Alarms,
		"faults":     s.Faults,
	}
}

// tick advances the model one virtual time step: arrivals (plus the
// family's surge), admission, service with crafted attack packets on the
// attacked cores, and sampling in the live Sampler's canonical order.
func (c *campaign) tick(t int) ([]threat.Sample, error) {
	perShard := make([]int, c.spec.Shards)
	var live []int
	for i, a := range c.alive {
		if a {
			live = append(live, i)
		}
	}
	if len(live) > 0 {
		for i := 0; i < c.spec.PacketsPerTick; i++ {
			perShard[live[i%len(live)]]++
		}
	}
	if ss, extra := c.drv.surge(t); extra > 0 && ss >= 0 && ss < c.spec.Shards && c.alive[ss] {
		perShard[ss] += extra
	}

	duty := c.drv.duty(t)
	atkShard := c.drv.attackShard()
	attacked := map[int]bool{}
	for _, core := range c.drv.attackCores() {
		attacked[core] = true
	}

	samples := make([]threat.Sample, 0, c.spec.Shards*(c.spec.Cores*2+2))
	for s := 0; s < c.spec.Shards; s++ {
		var arrivedNow, pressureNow uint64
		tokens := drainRate
		toProcess := 0

		if c.alive[s] {
			for i := 0; i < perShard[s]; i++ {
				c.arrived[s]++
				arrivedNow++
				// Backpressure measures congestion (marks and tail drops per
				// arrival), matching the live Sampler. Lockdown starvation is
				// deliberately NOT pressure: a response must not feed the
				// detector that fired it, or CRITICAL becomes self-sustaining.
				if c.lockdown {
					c.starved[s]++
					continue
				}
				if tokens > 0 {
					tokens--
					toProcess++
					continue
				}
				if c.depth[s] >= c.capac[s] {
					c.tailDrops[s]++
					pressureNow++
					continue
				}
				if c.depth[s] >= c.markAt[s] {
					c.marked[s]++
					pressureNow++
				}
				c.depth[s]++
			}
			// Leftover service drains backlog from earlier ticks.
			drain := min(c.depth[s], tokens)
			c.depth[s] -= drain
			toProcess += drain
		}

		// Round-robin this tick's packets over the active cores; attacked
		// cores spend their duty share on crafted attack packets.
		faultsBefore := c.faults[s]
		active := c.activeCores(s)
		tallies := make([]coreTally, c.spec.Cores)
		if len(active) > 0 && toProcess > 0 {
			quota := make([]int, len(active))
			for i := 0; i < toProcess; i++ {
				quota[i%len(active)]++
			}
			for ai, core := range active {
				q := quota[ai]
				if q == 0 {
					continue
				}
				nAtk := 0
				if s == atkShard && attacked[core] && duty > 0 {
					key := s*c.spec.Cores + core
					c.atkAcc[key] += duty * float64(q)
					nAtk = int(c.atkAcc[key])
					c.atkAcc[key] -= float64(nAtk)
					nAtk = min(nAtk, q)
				}
				tally := &tallies[core]
				sent := 0
				for sent < nAtk {
					mi, pkt, ok, err := c.drv.craft(c, t, s, core)
					if err != nil {
						return nil, err
					}
					if !ok {
						break
					}
					res, err := c.nps[s].ProcessOn(core, pkt, c.depth[s])
					if err != nil {
						return nil, err
					}
					sent++
					c.atkTick++
					tally.count(c, s, res)
					if err := c.drv.observe(c, t, s, core, mi, res); err != nil {
						return nil, err
					}
				}
				for i := sent; i < q; i++ {
					res, err := c.nps[s].ProcessOn(core, c.gen.Next(), c.depth[s])
					if err != nil {
						return nil, err
					}
					tally.count(c, s, res)
				}
			}
		}

		// Emit this shard's samples in the sampler's canonical order.
		for core := 0; core < c.spec.Cores; core++ {
			tl := tallies[core]
			samples = append(samples,
				threat.Sample{Shard: s, Core: core, Signal: threat.SigAlarmRate,
					Value: rate(tl.alarms, tl.packets)},
				threat.Sample{Shard: s, Core: core, Signal: threat.SigCycleOutlier,
					Value: rate(tl.outliers, tl.packets)},
			)
		}
		var procNow uint64
		for core := range tallies {
			procNow += tallies[core].packets
		}
		samples = append(samples,
			threat.Sample{Shard: s, Core: -1, Signal: threat.SigFaultRate,
				Value: rate(c.faults[s]-faultsBefore, procNow)},
			threat.Sample{Shard: s, Core: -1, Signal: threat.SigBackpressure,
				Value: rate(pressureNow, arrivedNow)},
		)
	}
	return samples, nil
}

func rate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func hasherMaker(compression string) (func(uint32) mhash.Hasher, error) {
	switch compression {
	case "sum":
		return func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }, nil
	case "sbox", "":
		return func(p uint32) mhash.Hasher {
			h, err := mhash.NewMerkleWith(p, 4, mhash.SBoxCompress())
			if err != nil {
				panic(err) // width 4 is always valid
			}
			return h
		}, nil
	}
	return nil, fmt.Errorf("campaign: unknown compression %q (want sum or sbox)", compression)
}

func newDriver(c *campaign) (driver, error) {
	switch c.spec.Family {
	case FamilyGadget:
		return newGadgetDriver(c)
	case FamilyCollision:
		return newCollisionDriver(c)
	case FamilySlowDrip:
		return newSlowDripDriver(c)
	case FamilyNoC:
		return newNoCDriver(c)
	case FamilyPoison:
		return newPoisonDriver(c)
	}
	return nil, fmt.Errorf("campaign: unknown family %q", c.spec.Family)
}
