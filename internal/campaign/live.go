package campaign

import (
	"fmt"
	"sync"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
	"sdmmon/internal/shard"
	"sdmmon/internal/threat"
)

// RunLive fires a campaign's attack corpus at the *real* concurrent
// traffic plane: shard.Plane workers race submitter goroutines while the
// live Sampler → Engine → PlaneResponder loop classifies and responds.
// The concurrent plane cannot promise byte-identity (and does not try —
// that is the model chassis's job); what it must promise, and what this
// drill checks at every tick, is packet conservation and a sane graded
// response while attack packets, clean traffic, and responses interleave.
// Run it under -race.

// LiveConfig sizes the live drill.
type LiveConfig struct {
	Shards int // 0 selects 3
	Cores  int // 0 selects 2
	Ticks  int // 0 selects 24
	Seed   int64
	// AttackPerTick crafted gadget packets join each attack-phase tick;
	// 0 selects 8.
	AttackPerTick int
}

// LiveResult summarizes a live drill.
type LiveResult struct {
	Peak          threat.Level
	Final         threat.Level
	Escalated     bool
	Incidents     int
	IsolatedCores int
	Stats         shard.PlaneStats
}

// RunLive executes the drill. Every mid-run conservation violation is an
// error, not a statistic.
func RunLive(cfg LiveConfig) (*LiveResult, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 3
	}
	if cfg.Cores == 0 {
		cfg.Cores = 2
	}
	if cfg.Ticks == 0 {
		cfg.Ticks = 24
	}
	if cfg.AttackPerTick == 0 {
		cfg.AttackPerTick = 8
	}

	app, err := apps.ByName("ipv4cm")
	if err != nil {
		return nil, err
	}
	prog, err := app.Program()
	if err != nil {
		return nil, err
	}
	mk, err := hasherMaker("sbox")
	if err != nil {
		return nil, err
	}
	param := uint32(cfg.Seed)*2654435761 + paramSalt
	g, err := monitor.Extract(prog, mk(param))
	if err != nil {
		return nil, err
	}
	bin, gb := prog.Serialize(), g.Serialize()

	cols := make([]*obs.Collector, cfg.Shards)
	nps := make([]*npu.NP, cfg.Shards)
	for i := range nps {
		cols[i] = obs.New(64)
		np, err := npu.New(npu.Config{Cores: cfg.Cores, MonitorsEnabled: true, Obs: cols[i], NewHasher: mk})
		if err != nil {
			return nil, err
		}
		if err := np.InstallAll(app.Name, bin, gb, param); err != nil {
			return nil, err
		}
		nps[i] = np
	}
	plane, err := shard.NewPlane(shard.Config{
		NPs:           nps,
		QueueCapacity: 32,
		MarkThreshold: 16,
		BatchSize:     8,
	})
	if err != nil {
		return nil, err
	}
	defer plane.Close()
	responder, err := threat.NewPlaneResponder(plane, nps)
	if err != nil {
		return nil, err
	}
	sampler, err := threat.NewSampler(threat.SamplerConfig{Plane: plane, NPs: nps, Collectors: cols})
	if err != nil {
		return nil, err
	}
	ecfg := threat.CampaignEngineConfig()
	ecfg.Responder = responder
	ecfg.Forensics = cols
	eng, err := threat.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}

	// Attack corpus: seeded gadget-chain packets through the stack-smash
	// overflow, identical to the model campaign's mutants.
	c := &campaign{
		spec:   Spec{Family: FamilyGadget, Seed: cfg.Seed, Mutants: 8, Shards: cfg.Shards, Cores: cfg.Cores},
		rng:    newRNG(cfg.Seed, "campaign-live"),
		prog:   prog,
		hasher: mk(param),
	}
	c.smash = attack.DefaultSmash()
	gd, err := newGadgetDriver(c)
	if err != nil {
		return nil, err
	}
	atk := gd.(*gadgetDriver).pkts

	gen := packet.NewGenerator(cfg.Seed)
	var genMu sync.Mutex
	next := func() []byte {
		genMu.Lock()
		defer genMu.Unlock()
		return gen.Next()
	}
	submit := func(n, workers int, attacking bool) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n/workers; i++ {
					plane.Submit(next())
				}
				if attacking && w == 0 {
					for i := 0; i < cfg.AttackPerTick; i++ {
						plane.Submit(atk[i%len(atk)])
					}
				}
			}()
		}
		wg.Wait()
	}

	res := &LiveResult{}
	for tick := 0; tick < cfg.Ticks; tick++ {
		attacking := tick >= cfg.Ticks/3
		submit(30*cfg.Shards, 3, attacking)
		tr, err := eng.Tick(threat.Tick(tick), sampler.Collect())
		if err != nil {
			return nil, err
		}
		if tr != nil && tr.To > tr.From {
			res.Escalated = true
		}
		if lvl := eng.Level(); lvl > res.Peak {
			res.Peak = lvl
		}
		if st := plane.Stats(); !st.Conserved() {
			return nil, fmt.Errorf("campaign live: conservation violated at tick %d: %+v", tick, st)
		}
	}
	plane.Close()
	st := plane.Stats()
	if !st.Conserved() {
		return nil, fmt.Errorf("campaign live: conservation violated after close: %+v", st)
	}
	res.Stats = st
	res.Final = eng.Level()
	res.Incidents = len(eng.Incidents())
	for _, np := range nps {
		for core := 0; core < cfg.Cores; core++ {
			if h, err := np.CoreHealth(core); err == nil && h == npu.CoreQuarantined {
				res.IsolatedCores++
			}
		}
	}
	return res, nil
}
