package campaign

import "testing"

func TestTenantIsolationDrill(t *testing.T) {
	if err := TenantIsolationDrill(0x7E4A); err != nil {
		t.Fatal(err)
	}
}

// The drill is seeded; a second seed guards against a lucky constant.
func TestTenantIsolationDrillSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: one drill seed is enough")
	}
	if err := TenantIsolationDrill(3); err != nil {
		t.Fatal(err)
	}
}
