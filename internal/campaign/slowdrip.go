package campaign

import (
	"fmt"

	"sdmmon/internal/npu"
	"sdmmon/internal/threat"
)

// The slowdrip family adaptively titrates the poison duty cycle against
// the engine's EWMA baselines: start far below the noise floor, climb
// geometrically while the classifier stays at or below LOW (each 5-tick
// epoch the baselines keep absorbing the previous rate), and retreat to
// the last safe duty the moment the classifier escalates past LOW. The
// highest sustained duty — the evasion frontier — quantifies how much
// poison the EWMA folding forgives, and is the campaign's sharpest
// argument for FreezeAt-style baseline freezing.

// SlowDripDutyFloor is the analytic evasion floor: against a frozen clean
// baseline the alarm-rate z-score is rate/MinStd, and MEDIUM requires
// z >= Up[Medium], so a drip whose realized per-tick attack rate stays
// below Up[Medium]×MinStd = 3×0.08 = 0.24 can never escalate past LOW.
// Duty quantizes to packet counts (multiples of 1/quota per tick), so the
// guarantee is on the realized rate: a configured duty of 0.10 on an
// 8-packet quota realizes at most 1/8 = 0.125 < 0.24 and stays at or
// below LOW forever, while a duty of 0.5 realizes 0.5 >= 0.24 and
// escalates. The slowdrip regression test pins both sides of this floor.
const SlowDripDutyFloor = 0.24

const slowDripEpochTicks = 5

// slowDripStart is the opening duty, far below the baselines' noise floor.
const slowDripStart = 1.0 / 64

// slowDripGrowth is the per-epoch duty multiplier.
const slowDripGrowth = 1.35

type slowDripDriver struct {
	pkt   []byte
	fixed float64 // > 0 pins the duty (regression mode); 0 = adaptive

	cur       float64
	frontier  float64
	retreated bool
	epoch     int
	epochMax  threat.Level
	slipped   int64
	outcomes  []MutantOutcome
}

func newSlowDripDriver(c *campaign) (driver, error) {
	hijack, err := c.smash.HijackPayload()
	if err != nil {
		return nil, err
	}
	pkt, err := c.smash.CraftPacket(hijack)
	if err != nil {
		return nil, err
	}
	return &slowDripDriver{
		pkt:   pkt,
		fixed: float64(c.spec.DutyMilli) / 1000,
		cur:   slowDripStart,
	}, nil
}

func (d *slowDripDriver) detectLevel() threat.Level { return threat.Medium }
func (d *slowDripDriver) attackShard() int          { return 0 }
func (d *slowDripDriver) attackCores() []int        { return []int{1} }

func (d *slowDripDriver) duty(t int) float64 {
	if t < Warmup {
		return 0
	}
	if d.fixed > 0 {
		return d.fixed
	}
	return d.cur
}

func (d *slowDripDriver) surge(t int) (int, int) { return -1, 0 }

func (d *slowDripDriver) craft(c *campaign, t, shard, core int) (int, []byte, bool, error) {
	return d.epoch, d.pkt, true, nil
}

func (d *slowDripDriver) observe(c *campaign, t, shard, core, mi int, res npu.Result) error {
	for len(d.outcomes) <= mi {
		d.outcomes = append(d.outcomes, MutantOutcome{
			Index: len(d.outcomes),
			Kind:  fmt.Sprintf("duty=%.4f", d.duty(t)),
			Tick:  t,
		})
	}
	o := &d.outcomes[mi]
	o.Packets++
	if res.Detected {
		o.Detected = true
	}
	return nil
}

func (d *slowDripDriver) afterTick(c *campaign, t int, lvl threat.Level) error {
	if t < Warmup {
		return nil
	}
	if lvl > d.epochMax {
		d.epochMax = lvl
	}
	if lvl <= threat.Low {
		// Slip accounting: packets that went through while the classifier
		// stayed at or below LOW.
		d.slipped += int64(c.atkTick)
		if len(d.outcomes) > 0 {
			d.outcomes[len(d.outcomes)-1].Depth += c.atkTick
		}
	}
	if d.fixed > 0 || d.retreated {
		return nil
	}
	// Adaptive titration: escalation past LOW retreats immediately to the
	// last duty that held; otherwise climb at each epoch boundary.
	if lvl > threat.Low {
		d.retreated = true
		if d.frontier > 0 {
			d.cur = d.frontier
		} else {
			d.cur = slowDripStart
		}
		return nil
	}
	if (t-Warmup+1)%slowDripEpochTicks == 0 {
		if d.epochMax <= threat.Low {
			d.frontier = d.cur
		}
		d.cur = min(d.cur*slowDripGrowth, 1)
		d.epoch++
		d.epochMax = threat.None
	}
	return nil
}

func (d *slowDripDriver) finish(c *campaign) {
	c.res.Mutants = d.outcomes
	frontier := d.frontier
	if d.fixed > 0 {
		// Regression mode: the frontier is the pinned duty if it never
		// escalated past LOW.
		if c.res.Peak <= threat.Low {
			frontier = d.fixed
		} else {
			frontier = 0
		}
	}
	c.res.SlowDrip = &SlowDripMetrics{
		FrontierDuty:   frontier,
		SlippedPackets: d.slipped,
		Epochs:         d.epoch,
		Retreated:      d.retreated,
	}
	c.res.EvasionDepth = frontier
}

func checkSlowDrip(r *Result) error {
	m := r.SlowDrip
	if m == nil {
		return fmt.Errorf("slowdrip: no titration metrics recorded")
	}
	if r.Spec.DutyMilli > 0 {
		// Fixed-duty regression runs assert through the dedicated test, not
		// here: just require the slip accounting to be coherent.
		if m.SlippedPackets < 0 {
			return fmt.Errorf("slowdrip: negative slip count %d", m.SlippedPackets)
		}
		return nil
	}
	if !m.Retreated {
		return fmt.Errorf("slowdrip: adaptive titration never found the frontier (peak %v)", r.Peak)
	}
	if m.FrontierDuty <= slowDripStart || m.FrontierDuty >= 0.7 {
		return fmt.Errorf("slowdrip: frontier duty %.4f outside the plausible (%.4f, 0.7) band",
			m.FrontierDuty, slowDripStart)
	}
	if m.SlippedPackets == 0 {
		return fmt.Errorf("slowdrip: no packets slipped below LOW")
	}
	if r.PacketsToDetect < 0 {
		return fmt.Errorf("slowdrip: retreat implies MEDIUM was reached, but detection never latched")
	}
	if r.Final > threat.Low {
		return fmt.Errorf("slowdrip: final level %v, want <= LOW at the frontier", r.Final)
	}
	if r.LockdownFired {
		return fmt.Errorf("slowdrip: lockdown fired during titration")
	}
	return nil
}
