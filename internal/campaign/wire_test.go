package campaign

import (
	"bytes"
	"errors"
	"testing"

	"sdmmon/internal/threat"
)

func TestSpecWireRoundTrip(t *testing.T) {
	for _, fam := range Families() {
		spec, err := ResolveSpec(Config{Family: fam, Seed: -3, Compression: "sum",
			CycleBudget: 1 << 40, Duty: 0.1, FreezeAt: threat.Critical})
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSpec(spec.Encode())
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if got != spec {
			t.Errorf("%s: round trip changed spec:\n got %+v\nwant %+v", fam, got, spec)
		}
	}
}

func TestSpecWireRejectsCorruption(t *testing.T) {
	spec, err := ResolveSpec(Config{Family: FamilyGadget, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wire := spec.Encode()
	cases := map[string][]byte{
		"empty":        {},
		"short":        wire[:6],
		"bad magic":    append([]byte("XAMP"), wire[4:]...),
		"bit flip":     flipByte(wire, len(wire)-3),
		"checksum":     flipByte(wire, 5),
		"trailing":     append(append([]byte{}, wire...), 0),
		"truncated":    wire[:len(wire)-2],
		"bad version":  reseal(wire, 0, 99),
		"bad compress": reseal(wire, len(wire)-8-2, 7),
	}
	for name, w := range cases {
		if _, err := DecodeSpec(w); !errors.Is(err, ErrWire) {
			t.Errorf("%s: want ErrWire, got %v", name, err)
		}
	}
}

// flipByte returns a copy of wire with one byte inverted.
func flipByte(wire []byte, i int) []byte {
	out := append([]byte{}, wire...)
	out[i] ^= 0xFF
	return out
}

// reseal rewrites payload byte i and recomputes the checksum, so the
// corruption reaches the field decoders rather than the checksum gate.
func reseal(wire []byte, i int, v byte) []byte {
	payload := append([]byte{}, wire[8:]...)
	payload[i] = v
	out := append([]byte{}, wire[:4]...)
	var c [4]byte
	c[0] = byte(checksum(payload) >> 24)
	c[1] = byte(checksum(payload) >> 16)
	c[2] = byte(checksum(payload) >> 8)
	c[3] = byte(checksum(payload))
	out = append(out, c[:]...)
	return append(out, payload...)
}

// FuzzCampaignSpec is the canonical wire format's fixed-point fuzzer: any
// input that decodes must re-encode to the identical bytes, and the
// decoded spec must survive a second round trip. Random inputs exercise
// the rejection paths; seeds cover every family.
func FuzzCampaignSpec(f *testing.F) {
	for _, fam := range Families() {
		spec, err := ResolveSpec(Config{Family: fam, Seed: 42})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(spec.Encode())
	}
	spec, _ := ResolveSpec(Config{Family: FamilyPoison, Seed: -1,
		Compression: "sum", FreezeAt: threat.Critical, Duty: 0.25})
	f.Add(spec.Encode())
	f.Add([]byte("CAMP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpec(data)
		if err != nil {
			if !errors.Is(err, ErrWire) {
				t.Fatalf("decode error outside ErrWire: %v", err)
			}
			return
		}
		re := s.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("decode∘encode not a fixed point:\n in  %x\n out %x", data, re)
		}
		s2, err := DecodeSpec(re)
		if err != nil || s2 != s {
			t.Fatalf("second round trip diverged: %+v vs %+v (%v)", s, s2, err)
		}
	})
}
