package timing

import "sdmmon/internal/obs"

// RolloutCost aggregates the simulated cost of a staged fleet upgrade: the
// management-plane side (wire time, control-processor crypto, retry backoff,
// summed over every delivery attempt) plus the data-plane side (NP cutover
// cycles for commits and rollbacks). The two live on different clocks — the
// control processor does seconds of RSA/AES work while a commit is a 64-cycle
// bank switch — which is the quantitative core of the zero-downtime claim:
// TotalSeconds is dominated entirely by work done while the old version keeps
// forwarding packets.
type RolloutCost struct {
	WireSeconds    float64 // link serialization + RTT across all attempts
	ProcessSeconds float64 // control-processor package verification (Table 2 model)
	BackoffSeconds float64 // retry waits between delivery attempts
	// DrainCycles is NP core cycles spent in atomic cutovers (commits and
	// rollbacks) — the only time the data plane is affected at all.
	DrainCycles uint64
	// Attempts counts transmissions; Deliveries counts routers that
	// received a verified package.
	Attempts   int
	Deliveries int
}

// AddDelivery folds one router's delivery accounting into the total.
func (c *RolloutCost) AddDelivery(wire, process, backoff float64, attempts int, delivered bool) {
	c.WireSeconds += wire
	c.ProcessSeconds += process
	c.BackoffSeconds += backoff
	c.Attempts += attempts
	if delivered {
		c.Deliveries++
	}
}

// TotalSeconds converts the aggregate to seconds under a cost model. The
// drain contribution is cycles at the model clock — nanoseconds against the
// seconds of crypto — making the asymmetry auditable rather than asserted.
func (c RolloutCost) TotalSeconds(m CostModel) float64 {
	return c.WireSeconds + c.ProcessSeconds + c.BackoffSeconds + m.Seconds(float64(c.DrainCycles))
}

// DrainSeconds isolates the data-plane interruption under a cost model.
func (c RolloutCost) DrainSeconds(m CostModel) float64 {
	return m.Seconds(float64(c.DrainCycles))
}

// Publish exports the aggregate into a metrics registry as gauges. Gauges
// (Set, not Add) make republication idempotent: a resumed rollout carries
// its prior cost forward and publishes the running total again, so the
// exported values always equal the report's, never double. Nil-safe.
func (c RolloutCost) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Gauge("rollout_wire_seconds").Set(c.WireSeconds)
	r.Gauge("rollout_crypto_seconds").Set(c.ProcessSeconds)
	r.Gauge("rollout_backoff_seconds").Set(c.BackoffSeconds)
	r.Gauge("rollout_drain_cycles").Set(float64(c.DrainCycles))
	r.Gauge("rollout_attempts").Set(float64(c.Attempts))
	r.Gauge("rollout_deliveries").Set(float64(c.Deliveries))
}
