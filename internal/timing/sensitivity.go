package timing

import (
	"fmt"
	"strings"
)

// This file checks that the Table 2 reproduction is not an artifact of
// overfitted constants: the model's *shape claims* (the step ordering the
// paper's analysis rests on) must survive sizable perturbations of every
// cost constant.

// ShapeOK verifies the Table 2 shape claims on a computed table. The
// paper's own RSA-vs-AES margin is only ~13% (8.74 s vs 7.73 s), so strict
// ordering between those two is not a robust claim; what the analysis rests
// on is: the two bulk-crypto steps are comparable and both clearly dominate
// verification and the certificate check, the download is cheapest, and the
// reduced total is below the full total.
func ShapeOK(steps []Step) bool {
	v := map[string]float64{}
	for _, s := range steps {
		v[s.Name] = s.Seconds
	}
	rsa := v["Decrypt AES key using router private key"]
	aes := v["Decrypt package with AES key"]
	ver := v["Verify package signature with operator public key"]
	cert := v["Check manufacturer certificate of operator public key"]
	dl := v["Download data from FTP server"]
	total := v["Total"]
	reduced := v["Total (no networking or certificate check)"]
	comparable := rsa >= 0.6*aes && aes >= 0.6*rsa
	dominate := rsa > 1.3*ver && aes > 1.3*ver && rsa > 1.3*cert && aes > 1.3*cert
	return comparable && dominate &&
		ver >= cert*0.5 && cert >= ver*0.2 &&
		dl < rsa && dl < aes && dl < ver && reduced < total
}

// SensitivityRow is the outcome of one perturbation.
type SensitivityRow struct {
	Param     string
	Factor    float64 // multiplicative perturbation applied
	Total     float64 // resulting total seconds
	ShapeHeld bool
}

// perturbation names one model constant with its setter.
type perturbation struct {
	name  string
	apply func(CostModel, float64) CostModel
}

// perturbations enumerates the model's constants.
func perturbations() []perturbation {
	return []perturbation{
		{"MACCycles", func(c CostModel, f float64) CostModel { c.MACCycles *= f; return c }},
		{"SHA256CyclesPerByte", func(c CostModel, f float64) CostModel { c.SHA256CyclesPerByte *= f; return c }},
		{"AESCyclesPerByte", func(c CostModel, f float64) CostModel { c.AESCyclesPerByte *= f; return c }},
		{"NetCyclesPerByte", func(c CostModel, f float64) CostModel { c.NetCyclesPerByte *= f; return c }},
		{"ExecOverheadCycles", func(c CostModel, f float64) CostModel { c.ExecOverheadCycles *= f; return c }},
	}
}

// SensitivityAnalysis perturbs each constant by ×(1±pct) and reports
// whether the Table 2 shape survives. A robust model keeps its ordering
// under every single-constant perturbation.
func SensitivityAnalysis(m CostModel, pct float64, in Table2Input) []SensitivityRow {
	var rows []SensitivityRow
	for _, p := range perturbations() {
		for _, f := range []float64{1 - pct, 1 + pct} {
			pm := p.apply(m, f)
			steps := pm.Table2(in)
			total := 0.0
			for _, s := range steps {
				if s.Name == "Total" {
					total = s.Seconds
				}
			}
			rows = append(rows, SensitivityRow{
				Param:     p.name,
				Factor:    f,
				Total:     total,
				ShapeHeld: ShapeOK(steps),
			})
		}
	}
	return rows
}

// RenderSensitivity formats the analysis.
func RenderSensitivity(rows []SensitivityRow) string {
	var sb strings.Builder
	sb.WriteString("Table 2 sensitivity: single-constant perturbations\n")
	sb.WriteString("  constant              factor   total (s)  shape holds\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-20s  %5.2f   %8.2f   %v\n", r.Param, r.Factor, r.Total, r.ShapeHeld)
	}
	return sb.String()
}
