// Package timing models the execution time of SDMMon's security functions
// on the prototype's control processor — a 100 MHz Nios II/f running
// µClinux and the OpenSSL 1.0.1e toolkit — and regenerates Table 2.
//
// The model is first-principles, not curve-fit per row: each cryptographic
// step is decomposed into primitive operations (32×32 multiply-accumulate
// steps of big-number modular multiplication, AES bytes, SHA-256 bytes, TCP
// receive bytes) whose per-unit cycle costs are fixed, documented constants
// calibrated once against the class of hardware (soft-core CPU, no crypto
// acceleration, C implementations, process-per-step shell driver). The
// *same* constants must then reproduce all five rows of Table 2 — that is
// the reproduction claim checked by the tests and EXPERIMENTS.md.
package timing

import (
	"fmt"
	"strings"

	"sdmmon/internal/seccrypto"
)

// CostModel carries the per-primitive cycle constants.
type CostModel struct {
	// ClockHz is the control-processor clock (prototype: 100 MHz).
	ClockHz float64
	// MACCycles is the cycle cost of one 32×32→64 multiply-accumulate step
	// inside big-number modular multiplication, including operand loads,
	// carry handling and loop overhead. Nios II/f has a 3-cycle hardware
	// multiplier; with memory stalls under µClinux a MAC step costs ~24
	// cycles.
	MACCycles float64
	// SHA256CyclesPerByte for OpenSSL's C sha256 on a 32-bit soft core.
	SHA256CyclesPerByte float64
	// AESCyclesPerByte for OpenSSL's table-based C AES-256-CBC decrypt
	// with cache pressure on a 4KB-D$ core.
	AESCyclesPerByte float64
	// NetCyclesPerByte covers the µClinux TCP/IP stack plus FTP client
	// receive path (copies, checksums, interrupts).
	NetCyclesPerByte float64
	// ExecOverheadCycles is the fixed cost of driving one security step as
	// a separate openssl(1) process on µClinux: fork/exec from flash,
	// dynamic linking, config parsing. The prototype scripts its steps
	// (§4.2 uses the OpenSSL *toolkit*), which is why even the tiny
	// certificate check costs seconds.
	ExecOverheadCycles float64
	// NetRoundTripSeconds is the fixed connection setup cost of the FTP
	// download (control channel dialog).
	NetRoundTripSeconds float64
}

// NiosIIPrototype returns the constants for the paper's control processor.
func NiosIIPrototype() CostModel {
	return CostModel{
		ClockHz:             100e6,
		MACCycles:           24,
		SHA256CyclesPerByte: 50,
		AESCyclesPerByte:    240,
		NetCyclesPerByte:    88,
		ExecOverheadCycles:  280e6, // ≈2.8 s per openssl invocation
		NetRoundTripSeconds: 0.1,
	}
}

// modMulCycles is one n-bit modular multiplication via schoolbook
// multiply-and-reduce: 2·w² MAC steps for w = n/32 words.
func (m CostModel) modMulCycles(bits int) float64 {
	w := float64(bits) / 32
	return 2 * w * w * m.MACCycles
}

// RSAPrivateCycles models a full private-key exponentiation without CRT
// (embedded OpenSSL builds commonly disable it to save memory): one
// square per exponent bit plus a multiply for roughly half the bits.
func (m CostModel) RSAPrivateCycles(bits int) float64 {
	return 1.5 * float64(bits) * m.modMulCycles(bits)
}

// RSAPublicCycles models verification with e = 65537: 17 modular
// multiplications.
func (m CostModel) RSAPublicCycles(bits int) float64 {
	return 17 * m.modMulCycles(bits)
}

// Seconds converts cycles to seconds at the model clock.
func (m CostModel) Seconds(cycles float64) float64 { return cycles / m.ClockHz }

// EstimateOps converts aggregate operation counts (as returned by
// seccrypto.OpenPackage) into seconds of control-processor time, excluding
// per-process overheads. Used by the router model for quick accounting.
func (m CostModel) EstimateOps(ops seccrypto.OpCounts) float64 {
	cycles := float64(ops.RSAPrivateOps)*m.RSAPrivateCycles(seccrypto.KeyBits) +
		float64(ops.RSAPublicOps)*m.RSAPublicCycles(seccrypto.KeyBits) +
		float64(ops.SHA256Bytes)*m.SHA256CyclesPerByte +
		float64(ops.AESBytes)*m.AESCyclesPerByte +
		float64(ops.DownloadBytes)*m.NetCyclesPerByte
	return m.Seconds(cycles)
}

// Step is one row of Table 2.
type Step struct {
	Name    string
	Seconds float64
	Paper   float64 // published value; 0 when the paper has no row
}

// PaperTable2 holds the published timings (seconds).
var PaperTable2 = struct {
	Download, CertCheck, DecryptKey, DecryptPackage, Verify float64
	Total, TotalReduced                                     float64
}{
	Download:       1.90,
	CertCheck:      3.33,
	DecryptKey:     8.74,
	DecryptPackage: 7.73,
	Verify:         3.92,
	Total:          25.62,
	TotalReduced:   20.39, // no networking, no certificate check
}

// Table2Input describes the package whose installation is being timed.
type Table2Input struct {
	WireBytes     int // package size on the wire (FTP download)
	CertBodyBytes int // signed certificate body size
	PayloadBytes  int // encrypted payload size (AES work)
	PlainBytes    int // plaintext payload size (SHA work for verify)
}

// InputFromPackage derives the Table 2 input from a real package.
func InputFromPackage(p *seccrypto.Package) Table2Input {
	return Table2Input{
		WireBytes:     len(p.Marshal()),
		CertBodyBytes: len(p.Cert.Marshal()),
		PayloadBytes:  len(p.EncPayload),
		PlainBytes:    len(p.EncPayload), // plaintext ≈ ciphertext for CBC
	}
}

// PrototypePackageInput reproduces the prototype's workload scale: the
// IPv4+CM binary, monitoring graph and µClinux file handling amount to a
// package of about 2 MB (back-solved from the AES row; documented in
// EXPERIMENTS.md).
func PrototypePackageInput() Table2Input {
	const size = 2 * 1024 * 1024
	return Table2Input{WireBytes: size, CertBodyBytes: 300, PayloadBytes: size, PlainBytes: size}
}

// Table2 regenerates "Table 2: Processing of security functions on Nios II"
// for the given package scale.
func (m CostModel) Table2(in Table2Input) []Step {
	download := m.NetRoundTripSeconds + m.Seconds(float64(in.WireBytes)*m.NetCyclesPerByte)
	certCheck := m.Seconds(m.ExecOverheadCycles +
		m.RSAPublicCycles(seccrypto.KeyBits) +
		float64(in.CertBodyBytes)*m.SHA256CyclesPerByte)
	decryptKey := m.Seconds(m.ExecOverheadCycles + m.RSAPrivateCycles(seccrypto.KeyBits))
	decryptPkg := m.Seconds(m.ExecOverheadCycles + float64(in.PayloadBytes)*m.AESCyclesPerByte)
	verifySig := m.Seconds(m.ExecOverheadCycles +
		m.RSAPublicCycles(seccrypto.KeyBits) +
		float64(in.PlainBytes)*m.SHA256CyclesPerByte)

	total := download + certCheck + decryptKey + decryptPkg + verifySig
	reduced := decryptKey + decryptPkg + verifySig

	return []Step{
		{"Download data from FTP server", download, PaperTable2.Download},
		{"Check manufacturer certificate of operator public key", certCheck, PaperTable2.CertCheck},
		{"Decrypt AES key using router private key", decryptKey, PaperTable2.DecryptKey},
		{"Decrypt package with AES key", decryptPkg, PaperTable2.DecryptPackage},
		{"Verify package signature with operator public key", verifySig, PaperTable2.Verify},
		{"Total", total, PaperTable2.Total},
		{"Total (no networking or certificate check)", reduced, PaperTable2.TotalReduced},
	}
}

// Render formats Table 2 rows.
func Render(title string, steps []Step) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%-55s %10s %10s\n", title, "step", "model (s)", "paper (s)")
	for _, s := range steps {
		if s.Paper > 0 {
			fmt.Fprintf(&sb, "%-55s %10.2f %10.2f\n", s.Name, s.Seconds, s.Paper)
		} else {
			fmt.Fprintf(&sb, "%-55s %10.2f %10s\n", s.Name, s.Seconds, "-")
		}
	}
	return sb.String()
}
