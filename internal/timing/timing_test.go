package timing

import (
	"math"
	"strings"
	"testing"

	"sdmmon/internal/seccrypto"
)

func TestModMulScalesQuadratically(t *testing.T) {
	m := NiosIIPrototype()
	r := m.modMulCycles(2048) / m.modMulCycles(1024)
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("2048/1024 modmul ratio = %f, want 4", r)
	}
}

func TestRSAPrivateVsPublic(t *testing.T) {
	m := NiosIIPrototype()
	priv := m.RSAPrivateCycles(2048)
	pub := m.RSAPublicCycles(2048)
	// Private = 1.5·2048 multiplications vs 17: ratio ≈ 180.
	if r := priv / pub; r < 150 || r > 210 {
		t.Errorf("private/public ratio = %.1f", r)
	}
}

func TestTable2ReproducesPaper(t *testing.T) {
	m := NiosIIPrototype()
	steps := m.Table2(PrototypePackageInput())
	if len(steps) != 7 {
		t.Fatalf("%d steps", len(steps))
	}
	for _, s := range steps {
		if s.Paper <= 0 {
			continue
		}
		err := math.Abs(s.Seconds-s.Paper) / s.Paper
		if err > 0.15 {
			t.Errorf("%s: model %.2f s vs paper %.2f s (%.0f%% off)",
				s.Name, s.Seconds, s.Paper, err*100)
		}
	}
	// Shape: RSA private-key decrypt is the most expensive step, AES
	// second; download cheapest.
	byName := map[string]float64{}
	for _, s := range steps {
		byName[s.Name] = s.Seconds
	}
	if !(byName["Decrypt AES key using router private key"] > byName["Decrypt package with AES key"]) {
		t.Error("RSA private op should dominate AES decrypt")
	}
	if !(byName["Decrypt package with AES key"] > byName["Verify package signature with operator public key"]) {
		t.Error("AES decrypt should exceed signature verify")
	}
	if !(byName["Download data from FTP server"] < byName["Check manufacturer certificate of operator public key"]) {
		t.Error("download should be the cheapest step")
	}
	// The paper's acceptability claim: total ≈ 25 s.
	if tot := byName["Total"]; tot < 20 || tot > 31 {
		t.Errorf("total %.2f s, want ≈25 s", tot)
	}
}

func TestTable2SmallPackage(t *testing.T) {
	// With our actual (KB-scale) bundles the per-process overhead and the
	// RSA private op dominate; the table still renders and totals stay
	// consistent.
	m := NiosIIPrototype()
	in := Table2Input{WireBytes: 4096, CertBodyBytes: 300, PayloadBytes: 3000, PlainBytes: 3000}
	steps := m.Table2(in)
	var sum float64
	byName := map[string]float64{}
	for _, s := range steps {
		byName[s.Name] = s.Seconds
		if s.Name != "Total" && !strings.HasPrefix(s.Name, "Total (") {
			sum += s.Seconds
		}
	}
	if math.Abs(sum-byName["Total"]) > 1e-9 {
		t.Errorf("total %.4f != sum %.4f", byName["Total"], sum)
	}
	if byName["Decrypt AES key using router private key"] < 5 {
		t.Error("RSA private op should still cost seconds on a small package")
	}
}

func TestEstimateOpsConsistentWithTable(t *testing.T) {
	// The aggregate estimator over real OpCounts must agree with the
	// per-step table (minus fixed overheads) for the same workload.
	m := NiosIIPrototype()
	in := PrototypePackageInput()
	ops := seccrypto.OpCounts{
		DownloadBytes: in.WireBytes,
		RSAPrivateOps: 1,
		RSAPublicOps:  2,
		SHA256Bytes:   in.PlainBytes + in.CertBodyBytes,
		AESBytes:      in.PayloadBytes,
	}
	est := m.EstimateOps(ops)
	steps := m.Table2(in)
	var total float64
	for _, s := range steps {
		if s.Name == "Total" {
			total = s.Seconds
		}
	}
	overheads := 4*m.Seconds(m.ExecOverheadCycles) + m.NetRoundTripSeconds
	if math.Abs((est+overheads)-total) > 0.05 {
		t.Errorf("estimate+overheads %.2f != table total %.2f", est+overheads, total)
	}
}

func TestInputFromPackageUsesRealSizes(t *testing.T) {
	in := Table2Input{WireBytes: 100, CertBodyBytes: 10, PayloadBytes: 50, PlainBytes: 50}
	_ = in
	// Construct a tiny real package via the fake-free path is exercised in
	// the core package tests; here check the derivation helper contract on
	// a synthetic value.
	p := &seccrypto.Package{
		DeviceID:   "r0",
		Cert:       &seccrypto.Certificate{Subject: "op", KeyDER: make([]byte, 270), Signature: make([]byte, 256)},
		EncKey:     make([]byte, 256),
		IV:         make([]byte, 16),
		EncPayload: make([]byte, 1024),
		Signature:  make([]byte, 256),
	}
	got := InputFromPackage(p)
	if got.PayloadBytes != 1024 || got.PlainBytes != 1024 {
		t.Errorf("payload sizes: %+v", got)
	}
	if got.WireBytes <= 1024+256+256 {
		t.Errorf("wire size %d too small", got.WireBytes)
	}
	if got.CertBodyBytes == 0 {
		t.Error("cert body empty")
	}
}

func TestRender(t *testing.T) {
	m := NiosIIPrototype()
	out := Render("Table 2", m.Table2(PrototypePackageInput()))
	for _, want := range []string{"Table 2", "Download", "Total", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestSecondsConversion(t *testing.T) {
	m := NiosIIPrototype()
	if got := m.Seconds(100e6); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("100M cycles = %f s", got)
	}
}
