package timing

import (
	"strings"
	"testing"
)

func TestShapeOKOnBaseModel(t *testing.T) {
	m := NiosIIPrototype()
	if !ShapeOK(m.Table2(PrototypePackageInput())) {
		t.Fatal("base model fails its own shape claims")
	}
}

func TestShapeOKDetectsBrokenOrdering(t *testing.T) {
	m := NiosIIPrototype()
	m.AESCyclesPerByte *= 10 // AES now dwarfs the RSA private op
	if ShapeOK(m.Table2(PrototypePackageInput())) {
		t.Error("shape check missed an inverted ordering")
	}
}

func TestSensitivityShapeRobustAt20Percent(t *testing.T) {
	rows := SensitivityAnalysis(NiosIIPrototype(), 0.20, PrototypePackageInput())
	if len(rows) != 10 { // 5 constants × 2 directions
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.ShapeHeld {
			t.Errorf("shape broke under %s ×%.2f (total %.2f s)", r.Param, r.Factor, r.Total)
		}
		if r.Total < 15 || r.Total > 40 {
			t.Errorf("%s ×%.2f: total %.2f s implausible", r.Param, r.Factor, r.Total)
		}
	}
}

func TestSensitivityShapeEventuallyBreaks(t *testing.T) {
	// The check must not be vacuous: at extreme perturbations the ordering
	// does break somewhere.
	rows := SensitivityAnalysis(NiosIIPrototype(), 0.95, PrototypePackageInput())
	broke := false
	for _, r := range rows {
		if !r.ShapeHeld {
			broke = true
		}
	}
	if !broke {
		t.Error("shape held under ±95% perturbations — the check is vacuous")
	}
}

func TestRenderSensitivity(t *testing.T) {
	rows := SensitivityAnalysis(NiosIIPrototype(), 0.2, PrototypePackageInput())
	s := RenderSensitivity(rows)
	if !strings.Contains(s, "MACCycles") || !strings.Contains(s, "shape holds") {
		t.Errorf("render malformed:\n%s", s)
	}
}
