package threat

import (
	"fmt"

	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/shard"
)

// Sampler turns the telemetry the plane already exports into per-tick
// threat samples by differencing successive snapshots:
//
//   - per-core alarm rate: monitor alarms per packet processed on the core,
//     from npu.MonitorStats and the np_packet_cycles{core="N"} histogram;
//   - per-core cycle-outlier rate: fraction of the core's packets whose
//     simulated cycle cost landed above OutlierAt;
//   - per-shard fault rate: architectural faults per processed packet, from
//     the NP's aggregate stats;
//   - per-shard ingress backpressure: tail drops plus CE marks per arrival,
//     from the plane's shard stats.
//
// Rates are deltas over the sampling interval, never cumulative averages —
// a burst must look like a burst, not be diluted by history. Alarm and
// packet counters can regress when a quarantined core is reinstalled (the
// monitor resets); deltas clamp at zero so a reset never reads as activity.
// Sample order is fixed (shards ascending, cores ascending, signal order
// within), which the byte-determinism of incident records relies on.
type Sampler struct {
	plane *shard.Plane
	nps   []*npu.NP
	// cyc[shard][core] is the per-core packet-cycle histogram resolved once
	// at construction.
	cyc [][]*obs.Histogram
	// outlierBucket[shard][core] is the first histogram bucket index whose
	// samples count as outliers.
	outlierBucket [][]int

	prev samplerState
}

type samplerState struct {
	alarms  [][]uint64 // per shard, per core
	packets [][]uint64
	outlier [][]uint64
	faults  []uint64
	proc    []uint64
	tail    []uint64
	marked  []uint64
	arrived []uint64
}

// SamplerConfig configures a live sampler.
type SamplerConfig struct {
	// Plane is the traffic plane whose ingress stats feed the backpressure
	// signal; nil disables that signal (campaigns model their own queues).
	Plane *shard.Plane
	// NPs are the line cards, index = shard.
	NPs []*npu.NP
	// Collectors are the per-shard obs collectors the NPs publish to,
	// index = shard; the sampler resolves np_packet_cycles histograms from
	// them. A nil entry disables the per-core signals for that shard.
	Collectors []*obs.Collector
	// OutlierAt is the per-packet cycle cost above which a packet counts as
	// a cycle outlier; 0 selects 2048 (the default apps finish far below).
	OutlierAt float64
}

// NewSampler builds a sampler and primes its first snapshot, so the first
// Collect call already yields interval deltas.
func NewSampler(cfg SamplerConfig) (*Sampler, error) {
	if len(cfg.NPs) == 0 {
		return nil, fmt.Errorf("threat: sampler needs at least one NP")
	}
	if cfg.OutlierAt == 0 {
		cfg.OutlierAt = 2048
	}
	if cfg.OutlierAt < 0 {
		return nil, fmt.Errorf("threat: outlier bound %v must be > 0", cfg.OutlierAt)
	}
	s := &Sampler{plane: cfg.Plane, nps: cfg.NPs}
	s.cyc = make([][]*obs.Histogram, len(cfg.NPs))
	s.outlierBucket = make([][]int, len(cfg.NPs))
	for i, np := range cfg.NPs {
		if np == nil {
			return nil, fmt.Errorf("threat: NP %d is nil", i)
		}
		cores := np.Cores()
		s.cyc[i] = make([]*obs.Histogram, cores)
		s.outlierBucket[i] = make([]int, cores)
		var col *obs.Collector
		if i < len(cfg.Collectors) {
			col = cfg.Collectors[i]
		}
		for c := 0; c < cores; c++ {
			h := col.Registry().Histogram(fmt.Sprintf(`np_packet_cycles{core="%d"}`, c), obs.CycleBuckets)
			s.cyc[i][c] = h
			// First bucket whose samples exceed the bound: bounds are
			// inclusive upper edges, so bucket b holds samples <= Bounds[b].
			b := 0
			for b < len(obs.CycleBuckets) && obs.CycleBuckets[b] <= cfg.OutlierAt {
				b++
			}
			s.outlierBucket[i][c] = b
		}
	}
	s.prev = s.snapshot()
	return s, nil
}

// snapshot reads every counter the sampler differences.
func (s *Sampler) snapshot() samplerState {
	n := len(s.nps)
	st := samplerState{
		alarms: make([][]uint64, n), packets: make([][]uint64, n),
		outlier: make([][]uint64, n),
		faults:  make([]uint64, n), proc: make([]uint64, n),
		tail: make([]uint64, n), marked: make([]uint64, n),
		arrived: make([]uint64, n),
	}
	for i, np := range s.nps {
		cores := np.Cores()
		st.alarms[i] = make([]uint64, cores)
		st.packets[i] = make([]uint64, cores)
		st.outlier[i] = make([]uint64, cores)
		for c := 0; c < cores; c++ {
			if _, alarms, _, err := np.MonitorStats(c); err == nil {
				st.alarms[i][c] = alarms
			}
			h := s.cyc[i][c]
			st.packets[i][c] = h.Count()
			counts := h.BucketCounts()
			for b := s.outlierBucket[i][c]; b < len(counts); b++ {
				st.outlier[i][c] += counts[b]
			}
		}
		nst := np.Stats()
		st.faults[i] = nst.Faults
		st.proc[i] = nst.Processed
	}
	if s.plane != nil {
		ps := s.plane.Stats()
		for _, sh := range ps.Shards {
			if sh.Shard < len(s.nps) {
				st.tail[sh.Shard] = sh.TailDrops
				st.marked[sh.Shard] = sh.Marked
				st.arrived[sh.Shard] = sh.Arrived
			}
		}
	}
	return st
}

// delta is new-minus-old clamped at zero (counters regress on reinstall).
func delta(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// rate is num/den with an empty interval reading as quiet, not NaN.
func rate(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Collect snapshots the plane and returns this interval's samples in the
// fixed deterministic order.
func (s *Sampler) Collect() []Sample {
	cur := s.snapshot()
	var out []Sample
	for i := range s.nps {
		for c := range cur.alarms[i] {
			pk := delta(cur.packets[i][c], s.prev.packets[i][c])
			out = append(out,
				Sample{Shard: i, Core: c, Signal: SigAlarmRate,
					Value: rate(delta(cur.alarms[i][c], s.prev.alarms[i][c]), pk)},
				Sample{Shard: i, Core: c, Signal: SigCycleOutlier,
					Value: rate(delta(cur.outlier[i][c], s.prev.outlier[i][c]), pk)},
			)
		}
		out = append(out, Sample{Shard: i, Core: -1, Signal: SigFaultRate,
			Value: rate(delta(cur.faults[i], s.prev.faults[i]), delta(cur.proc[i], s.prev.proc[i]))})
		if s.plane != nil {
			press := delta(cur.tail[i], s.prev.tail[i]) + delta(cur.marked[i], s.prev.marked[i])
			out = append(out, Sample{Shard: i, Core: -1, Signal: SigBackpressure,
				Value: rate(press, delta(cur.arrived[i], s.prev.arrived[i]))})
		}
	}
	s.prev = cur
	return out
}
