package threat

import (
	"fmt"
	"math"
)

// BaselineConfig parameterizes one EWMA baseline.
type BaselineConfig struct {
	// Alpha is the EWMA weight of the newest sample, in (0, 1].
	Alpha float64
	// Warmup is the number of samples the baseline must absorb before it
	// arms and scores deviations; before that every score is 0 (the
	// engine's absolute thresholds cover the cold-start window).
	Warmup int
	// MinStd floors the standard deviation used for scoring, so a
	// zero-variance signal stream (a constant) yields large-but-finite
	// scores on its first deviation instead of a division blow-up.
	MinStd float64
}

// Validate rejects non-usable configurations loudly.
func (c BaselineConfig) Validate() error {
	if !(c.Alpha > 0 && c.Alpha <= 1) {
		return fmt.Errorf("threat: baseline alpha %v outside (0, 1]", c.Alpha)
	}
	if c.Warmup < 1 {
		return fmt.Errorf("threat: baseline warmup %d must be >= 1", c.Warmup)
	}
	if !(c.MinStd > 0) {
		return fmt.Errorf("threat: baseline min std %v must be > 0", c.MinStd)
	}
	return nil
}

// Baseline tracks a signal's exponentially weighted mean and variance. The
// update is the standard EW pair:
//
//	d     = v - mean
//	mean += α·d
//	var   = (1-α)·(var + α·d²)
//
// Scoring is separated from updating so the engine can score a sample
// against the pre-sample baseline (an attack must not dilute the evidence
// against itself) and freeze updates entirely while the threat level is
// elevated (baseline-poisoning guard).
type Baseline struct {
	cfg  BaselineConfig
	n    int
	mean float64
	varr float64
}

// NewBaseline builds a baseline; the config must be valid (Validate).
func NewBaseline(cfg BaselineConfig) *Baseline {
	return &Baseline{cfg: cfg}
}

// Armed reports whether the warmup is complete and scores are meaningful.
func (b *Baseline) Armed() bool { return b.n >= b.cfg.Warmup }

// Mean returns the current EWMA mean.
func (b *Baseline) Mean() float64 { return b.mean }

// Std returns the current floored standard deviation.
func (b *Baseline) Std() float64 {
	return math.Max(math.Sqrt(b.varr), b.cfg.MinStd)
}

// Score rates a sample against the current baseline: its positive deviation
// in (floored) standard deviations, 0 for samples at or below the mean, and
// 0 while the baseline is still warming up.
func (b *Baseline) Score(v float64) float64 {
	if !b.Armed() {
		return 0
	}
	d := v - b.mean
	if d <= 0 {
		return 0
	}
	return d / b.Std()
}

// Observe folds a sample into the baseline. The first sample seeds the
// mean exactly (no decay from a zero prior).
func (b *Baseline) Observe(v float64) {
	if b.n == 0 {
		b.mean = v
		b.n = 1
		return
	}
	a := b.cfg.Alpha
	d := v - b.mean
	b.mean += a * d
	b.varr = (1 - a) * (b.varr + a*d*d)
	b.n++
}
