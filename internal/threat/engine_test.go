package threat

import (
	"strings"
	"testing"
)

// Virtual time must be strictly monotonic: replays depend on tick order,
// so a stalled or repeated clock is an error, not a silent no-op.
func TestEngineMonotonicTick(t *testing.T) {
	eng, err := NewEngine(DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Tick(5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Tick(5, nil); err == nil {
		t.Error("repeated tick accepted")
	}
	if _, err := eng.Tick(4, nil); err == nil {
		t.Error("backwards tick accepted")
	}
	if _, err := eng.Tick(6, nil); err != nil {
		t.Errorf("forward tick rejected: %v", err)
	}
}

// AbsHigh is the cold-start cover: an extreme raw value must reach HIGH on
// the very first tick, before any baseline has armed.
func TestEngineAbsHighColdStart(t *testing.T) {
	eng, err := NewEngine(DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Tick(0, []Sample{
		{Shard: 0, Core: 0, Signal: SigAlarmRate, Value: 0.9}, // >= AbsHigh 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.To < High {
		t.Fatalf("cold-start saturation tick = %+v, want escalation to >= %s", tr, High)
	}
}

// With no responder the engine is record-only: levels move and incidents
// capture, but nothing fires and nothing errors.
func TestEngineRecordOnly(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.CaptureAt = Low
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Tick(0, []Sample{{Shard: 2, Core: 1, Signal: SigFaultRate, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.To == None {
		t.Fatalf("saturated signal did not escalate: %+v", tr)
	}
	// Actions are still *planned* (they appear in the trajectory and the
	// incident record), they just have no executor.
	if len(tr.Actions) == 0 {
		t.Error("escalation carries no planned actions")
	}
	if got := len(eng.Incidents()); got != 1 {
		t.Fatalf("incidents = %d, want 1", got)
	}
	inc := eng.Incidents()[0]
	if inc.Shard != 2 || inc.To != tr.To {
		t.Errorf("incident does not describe the transition: %+v", inc)
	}
}

// Baselines freeze at FreezeAt and above, and keep absorbing below it: the
// poisoning guard. A long attack plateau at MEDIUM must not decay into the
// baseline and de-escalate on its own.
func TestEngineBaselineFreeze(t *testing.T) {
	cfg := CampaignEngineConfig() // FreezeAt Low
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	quiet := []Sample{{Shard: 0, Core: 0, Signal: SigAlarmRate, Value: 0}}
	tick := Tick(0)
	for ; tick < 10; tick++ {
		if _, err := eng.Tick(tick, quiet); err != nil {
			t.Fatal(err)
		}
	}
	// A plateau well above the MEDIUM threshold, held for many ticks.
	hot := []Sample{{Shard: 0, Core: 0, Signal: SigAlarmRate, Value: 0.3}}
	for ; tick < 40; tick++ {
		if _, err := eng.Tick(tick, hot); err != nil {
			t.Fatal(err)
		}
		if lvl := eng.Level(); tick > 10 && lvl < Medium {
			t.Fatalf("tick %d: attack plateau normalized itself into the baseline (level %s)", tick, lvl)
		}
	}
}

// An escalation that jumps multiple levels sweeps every entered level's
// policy but fires each action once.
func TestEngineMultiLevelJumpDedupsActions(t *testing.T) {
	rec := &recordingResponder{}
	cfg := DefaultEngineConfig()
	cfg.Responder = rec
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Arm the baseline quiet, then saturate: 1/MinStd = 50 >= the CRITICAL
	// threshold, so NONE jumps straight to CRITICAL. The sweep covers the
	// policies of MEDIUM (tighten), HIGH (isolate + tighten), and CRITICAL
	// (rehash, zeroize, lockdown), with tighten deduplicated.
	quiet := []Sample{{Shard: 1, Core: 2, Signal: SigAlarmRate, Value: 0}}
	tick := Tick(0)
	for ; tick < 10; tick++ {
		if _, err := eng.Tick(tick, quiet); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := eng.Tick(tick, []Sample{{Shard: 1, Core: 2, Signal: SigAlarmRate, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.To != Critical {
		t.Fatalf("saturation did not reach %s: %+v", Critical, tr)
	}
	want := []string{"tighten_admission", "isolate_core", "rehash_shard", "zeroize_staged", "lockdown"}
	if strings.Join(tr.Actions, ",") != strings.Join(want, ",") {
		t.Errorf("swept actions = %v, want %v", tr.Actions, want)
	}
	if rec.tightens != 1 {
		t.Errorf("tighten fired %d times across the jump, want 1", rec.tightens)
	}
	if rec.isolated != 1 || rec.isolatedShard != 1 || rec.isolatedCore != 2 {
		t.Errorf("isolate fired %d times on shard %d core %d, want once on 1/2",
			rec.isolated, rec.isolatedShard, rec.isolatedCore)
	}
}

type recordingResponder struct {
	tightens, isolated          int
	isolatedShard, isolatedCore int
}

func (r *recordingResponder) TightenAdmission(int) error { r.tightens++; return nil }
func (r *recordingResponder) IsolateCore(s, c int) error {
	r.isolated++
	r.isolatedShard, r.isolatedCore = s, c
	return nil
}
func (r *recordingResponder) RehashShard(int) error { return nil }
func (r *recordingResponder) ZeroizeStaged() error  { return nil }
func (r *recordingResponder) Lockdown() error       { return nil }
func (r *recordingResponder) Relax(Level) error     { return nil }

// The strict policy decoder rejects each malformed shape with a loud
// error; the canonical default round-trips.
func TestPolicyDecodeStrict(t *testing.T) {
	bad := map[string]string{
		"wrong version":   `{"version":2,"responses":{}}`,
		"actions on none": `{"version":1,"responses":{"none":["lockdown"]}}`,
		"unknown level":   `{"version":1,"responses":{"dire":["lockdown"]}}`,
		"unknown action":  `{"version":1,"responses":{"high":["reboot"]}}`,
		"duplicate":       `{"version":1,"responses":{"high":["lockdown","lockdown"]}}`,
		"unknown field":   `{"version":1,"responses":{},"extra":1}`,
		"trailing bytes":  `{"version":1,"responses":{}} x`,
		"not json":        `hello`,
	}
	for name, in := range bad {
		if _, err := DecodePolicy([]byte(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	enc, err := DefaultPolicy().Encode()
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodePolicy(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(DefaultPolicy()) {
		t.Error("default policy does not round-trip")
	}
}
