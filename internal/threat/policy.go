package threat

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Action is one graded response.
type Action uint8

const (
	// ActTightenAdmission halves the offending shard's ingress admission
	// thresholds (queue capacity and CE-mark threshold), shedding load
	// pressure at the edge.
	ActTightenAdmission Action = iota
	// ActIsolateCore quarantines the offending core via the existing
	// per-core supervisor.
	ActIsolateCore
	// ActRehashShard removes the offending shard from dispatch; its flows
	// rendezvous-rehash onto the surviving shards (HRW minimal disruption).
	ActRehashShard
	// ActZeroizeStaged discards every staged (uncommitted) upgrade bundle
	// fleet-wide — a compromised plane must not commit unvetted code.
	ActZeroizeStaged
	// ActLockdown stops admitting traffic plane-wide; workers drain the
	// backlog and every later arrival is counted as starved.
	ActLockdown
	// NumActions bounds per-action arrays.
	NumActions int = iota
)

var actionNames = [NumActions]string{
	"tighten_admission", "isolate_core", "rehash_shard", "zeroize_staged", "lockdown",
}

func (a Action) String() string {
	if int(a) < NumActions {
		return actionNames[a]
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// ParseAction resolves an action name.
func ParseAction(s string) (Action, error) {
	for i, n := range actionNames {
		if n == s {
			return Action(i), nil
		}
	}
	return 0, fmt.Errorf("threat: unknown action %q", s)
}

// Responder executes graded responses against the plane. The engine calls
// it with the offending shard/core of the transition that fired the action;
// Relax is called on every de-escalation so reversible responses (admission
// tightening) can be undone when the threat passes. Implementations:
// PlaneResponder (the live shard.Plane) and the campaign's replay model.
type Responder interface {
	TightenAdmission(shard int) error
	IsolateCore(shard, core int) error
	RehashShard(shard int) error
	ZeroizeStaged() error
	Lockdown() error
	Relax(to Level) error
}

// Policy maps threat levels to response actions.
type Policy struct {
	actions [NumLevels][]Action
}

// DefaultPolicy is the graded default: observe at LOW, tighten admission at
// MEDIUM, isolate the offender at HIGH, and at CRITICAL rehash flows away,
// zeroize staged bundles, and lock the plane down.
func DefaultPolicy() Policy {
	var p Policy
	p.actions[Medium] = []Action{ActTightenAdmission}
	p.actions[High] = []Action{ActIsolateCore, ActTightenAdmission}
	p.actions[Critical] = []Action{ActRehashShard, ActZeroizeStaged, ActLockdown}
	return p
}

// For returns the actions configured for a level (shared; do not mutate).
func (p Policy) For(l Level) []Action {
	if int(l) >= NumLevels {
		return nil
	}
	return p.actions[l]
}

// policyJSON is the wire schema of a policy configuration.
type policyJSON struct {
	Version   int                 `json:"version"`
	Responses map[string][]string `json:"responses"`
}

// PolicyVersion is the only accepted policy schema version.
const PolicyVersion = 1

// DecodePolicy parses a policy configuration, rejecting malformed input
// loudly instead of defaulting: unknown fields, unknown level or action
// names, actions on "none", duplicate actions within a level, a missing or
// wrong version, and trailing garbage are all errors.
func DecodePolicy(b []byte) (Policy, error) {
	var p Policy
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var cfg policyJSON
	if err := dec.Decode(&cfg); err != nil {
		return p, fmt.Errorf("threat: policy decode: %w", err)
	}
	if dec.More() {
		return p, fmt.Errorf("threat: policy decode: trailing data after configuration")
	}
	if cfg.Version != PolicyVersion {
		return p, fmt.Errorf("threat: policy version %d, want %d", cfg.Version, PolicyVersion)
	}
	for name, acts := range cfg.Responses {
		l, err := ParseLevel(name)
		if err != nil {
			return Policy{}, err
		}
		if l == None {
			return Policy{}, fmt.Errorf("threat: level %q cannot carry responses", name)
		}
		seen := [NumActions]bool{}
		list := make([]Action, 0, len(acts))
		for _, an := range acts {
			a, err := ParseAction(an)
			if err != nil {
				return Policy{}, err
			}
			if seen[a] {
				return Policy{}, fmt.Errorf("threat: duplicate action %q at level %q", an, name)
			}
			seen[a] = true
			list = append(list, a)
		}
		p.actions[l] = list
	}
	return p, nil
}

// Encode renders the policy in the canonical wire form: map keys are
// emitted in level order by encoding/json's key sort, levels with no
// actions are omitted, so Encode∘Decode is a fixed point (the fuzz
// round-trip property).
func (p Policy) Encode() ([]byte, error) {
	cfg := policyJSON{Version: PolicyVersion, Responses: map[string][]string{}}
	for l := 1; l < NumLevels; l++ {
		if len(p.actions[l]) == 0 {
			continue
		}
		names := make([]string, len(p.actions[l]))
		for i, a := range p.actions[l] {
			names[i] = a.String()
		}
		cfg.Responses[Level(l).String()] = names
	}
	return json.Marshal(cfg)
}

// Equal reports whether two policies configure identical responses.
func (p Policy) Equal(q Policy) bool {
	for l := 0; l < NumLevels; l++ {
		if len(p.actions[l]) != len(q.actions[l]) {
			return false
		}
		for i := range p.actions[l] {
			if p.actions[l][i] != q.actions[l][i] {
				return false
			}
		}
	}
	return true
}

// Levels returns the levels that carry at least one action, ascending
// (diagnostics).
func (p Policy) Levels() []Level {
	var out []Level
	for l := 1; l < NumLevels; l++ {
		if len(p.actions[l]) > 0 {
			out = append(out, Level(l))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
