package threat

import (
	"fmt"
	"sync"

	"sdmmon/internal/npu"
	"sdmmon/internal/shard"
)

// PlaneResponder executes graded responses against a live shard.Plane and
// its NPs. Tightening is reversible: the first tighten of a shard records
// its original admission thresholds, and Relax restores them once the
// level falls below Medium. Lockdown lifts when the level falls below
// Critical. Core isolation and shard rehash are not undone automatically —
// reinstating a quarantined core or a failed shard is an operator action
// (reinstall), not something the engine should do on a quiet interval.
type PlaneResponder struct {
	plane *shard.Plane
	nps   []*npu.NP

	mu       sync.Mutex
	original map[int][2]int // shard -> pre-tighten {capacity, markAt}
}

// NewPlaneResponder wires a responder to a plane and its line cards
// (index = shard).
func NewPlaneResponder(plane *shard.Plane, nps []*npu.NP) (*PlaneResponder, error) {
	if plane == nil {
		return nil, fmt.Errorf("threat: responder needs a plane")
	}
	if len(nps) != plane.Shards() {
		return nil, fmt.Errorf("threat: %d NPs for %d shards", len(nps), plane.Shards())
	}
	return &PlaneResponder{plane: plane, nps: nps, original: map[int][2]int{}}, nil
}

// TightenAdmission halves the shard's queue capacity and CE-mark threshold
// (floored at 1), remembering the originals for Relax. Repeated tightening
// keeps halving but restores to the first-recorded originals.
func (r *PlaneResponder) TightenAdmission(shard int) error {
	capacity, markAt, err := r.plane.Admission(shard)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if _, ok := r.original[shard]; !ok {
		r.original[shard] = [2]int{capacity, markAt}
	}
	r.mu.Unlock()
	capacity = max(1, capacity/2)
	markAt = max(1, min(markAt/2, capacity))
	return r.plane.SetAdmission(shard, capacity, markAt)
}

// IsolateCore quarantines the offending core on the shard's NP.
func (r *PlaneResponder) IsolateCore(shard, core int) error {
	if shard < 0 || shard >= len(r.nps) {
		return fmt.Errorf("threat: no shard %d", shard)
	}
	return r.nps[shard].Quarantine(core)
}

// RehashShard removes the shard from dispatch; its flows rendezvous-rehash
// onto the survivors.
func (r *PlaneResponder) RehashShard(shard int) error {
	return r.plane.FailShard(shard)
}

// ZeroizeStaged discards every staged upgrade bundle fleet-wide.
func (r *PlaneResponder) ZeroizeStaged() error {
	for _, np := range r.nps {
		np.AbortAllStaged()
	}
	return nil
}

// Lockdown stops plane-wide admission.
func (r *PlaneResponder) Lockdown() error {
	r.plane.Lockdown()
	return nil
}

// Relax undoes reversible responses as the level falls: below Critical the
// plane-wide lockdown lifts, below Medium every tightened shard gets its
// original admission thresholds back.
func (r *PlaneResponder) Relax(to Level) error {
	if to < Critical {
		r.plane.ClearLockdown()
	}
	if to >= Medium {
		return nil
	}
	r.mu.Lock()
	original := r.original
	r.original = map[int][2]int{}
	r.mu.Unlock()
	var firstErr error
	for shard, adm := range original {
		if err := r.plane.SetAdmission(shard, adm[0], adm[1]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
