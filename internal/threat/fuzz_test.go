package threat

import (
	"bytes"
	"testing"
)

// FuzzThreatPolicy drives arbitrary bytes through the strict policy
// decoder. Invariants: no panic on any input; every accepted input
// re-encodes canonically, and Encode∘Decode is a fixed point from there
// (decoding the canonical form yields an equal policy and identical
// bytes).
func FuzzThreatPolicy(f *testing.F) {
	if enc, err := DefaultPolicy().Encode(); err == nil {
		f.Add(enc)
	}
	f.Add([]byte(`{"version":1,"responses":{}}`))
	f.Add([]byte(`{"version":1,"responses":{"low":["tighten_admission"]}}`))
	f.Add([]byte(`{"version":1,"responses":{"critical":["lockdown","zeroize_staged"]}}`))
	f.Add([]byte(`{"version":2,"responses":{}}`))                               // wrong version
	f.Add([]byte(`{"version":1,"responses":{"none":["lockdown"]}}`))            // actions on none
	f.Add([]byte(`{"version":1,"responses":{"high":["nope"]}}`))                // unknown action
	f.Add([]byte(`{"version":1,"responses":{"high":["lockdown","lockdown"]}}`)) // duplicate
	f.Add([]byte(`{"version":1,"responses":{}} trailing`))
	f.Add([]byte(`{"version":1,"responses":{},"extra":true}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePolicy(data)
		if err != nil {
			return // rejected loudly — that's a fine outcome
		}
		enc, err := p.Encode()
		if err != nil {
			t.Fatalf("accepted policy does not encode: %v", err)
		}
		p2, err := DecodePolicy(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected by own decoder: %v\n%s", err, enc)
		}
		if !p.Equal(p2) {
			t.Fatalf("decode(encode(p)) != p for input %q", data)
		}
		enc2, err := p2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixed point:\n  first:  %s\n  second: %s", enc, enc2)
		}
	})
}

// FuzzIncidentRecord drives arbitrary bytes through the strict incident
// decoder. Invariants: no panic; every accepted record is a
// marshal→unmarshal→marshal fixed point (the byte-determinism the replay
// suite depends on).
func FuzzIncidentRecord(f *testing.F) {
	rec := IncidentRecord{
		ID: 1, Tick: 12, From: None, To: Critical, Score: 18.75, Shard: 1, Core: 2,
		Readings: []SignalReading{
			{Shard: 1, Core: 2, Signal: "alarm_rate", Value: 1, Score: 12.5},
		},
		Events:     []IncidentEvent{{Shard: 1, Seq: 3, Kind: "alarm", Core: 2, PC: 8, Aux: 9}},
		StatsDelta: map[string]uint64{"alarms": 40, "arrived": 90},
		Actions:    []string{"rehash_shard", "zeroize_staged", "lockdown"},
	}
	if b, err := rec.Marshal(); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"id":1,"tick":0,"from":0,"to":3,"score":6,"shard":0,"core":-1}`))
	f.Add([]byte(`{"id":1,"tick":0,"from":0,"to":3,"score":6,"shard":0,"core":0,"bogus":1}`))
	f.Add([]byte(`{"id":1} {"id":2}`)) // trailing data
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"score":1e999}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalIncident(data)
		if err != nil {
			return
		}
		raw, err := r.Marshal()
		if err != nil {
			t.Fatalf("accepted record does not marshal: %v", err)
		}
		back, err := UnmarshalIncident(raw)
		if err != nil {
			t.Fatalf("canonical form rejected by own decoder: %v\n%s", err, raw)
		}
		raw2, err := back.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("marshal is not a fixed point:\n  first:  %s\n  second: %s", raw, raw2)
		}
	})
}
