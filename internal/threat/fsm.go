package threat

import "fmt"

// FSMConfig parameterizes the threat-classifier state machine.
type FSMConfig struct {
	// Up[l] is the combined score at or above which the classifier calls
	// for level l. Up[None] is ignored (always 0); the rest must be
	// strictly ascending and positive.
	Up [NumLevels]float64
	// Hysteresis, in (0, 1], scales the de-escalation threshold: the
	// classifier leaves level l only once the score falls to or below
	// Up[l]·Hysteresis. A score inside the band (Up[l]·Hysteresis, Up[l])
	// holds the level — the boundary chatter guard.
	Hysteresis float64
	// Dwell[l] is the minimum residency at level l, in virtual ticks,
	// before a de-escalation out of l is allowed. Escalations are never
	// dwell-delayed.
	Dwell [NumLevels]Tick
}

// DefaultFSMConfig returns the classifier tuning the campaigns are pinned
// against.
func DefaultFSMConfig() FSMConfig {
	return FSMConfig{
		Up:         [NumLevels]float64{0, 1.5, 3, 6, 12},
		Hysteresis: 0.6,
		Dwell:      [NumLevels]Tick{0, 2, 3, 4, 6},
	}
}

// Validate rejects unusable configurations loudly.
func (c FSMConfig) Validate() error {
	prev := 0.0
	for l := 1; l < NumLevels; l++ {
		if c.Up[l] <= prev {
			return fmt.Errorf("threat: fsm Up thresholds must be strictly ascending and positive, got %v", c.Up)
		}
		prev = c.Up[l]
	}
	if !(c.Hysteresis > 0 && c.Hysteresis <= 1) {
		return fmt.Errorf("threat: fsm hysteresis %v outside (0, 1]", c.Hysteresis)
	}
	return nil
}

// FSM is the threat-level state machine. Escalation is immediate (and may
// jump several levels in one step); de-escalation is one level per step,
// gated by the level's dwell time and the hysteresis band.
type FSM struct {
	cfg     FSMConfig
	level   Level
	entered Tick
}

// NewFSM builds a classifier at level None.
func NewFSM(cfg FSMConfig) (*FSM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FSM{cfg: cfg}, nil
}

// Level reports the current level.
func (f *FSM) Level() Level { return f.level }

// target returns the level the score alone calls for.
func (f *FSM) target(score float64) Level {
	t := None
	for l := 1; l < NumLevels; l++ {
		if score >= f.cfg.Up[l] {
			t = Level(l)
		}
	}
	return t
}

// Step advances the classifier one virtual tick and reports the new level
// and whether it changed.
func (f *FSM) Step(now Tick, score float64) (Level, bool) {
	t := f.target(score)
	if t > f.level {
		f.level = t
		f.entered = now
		return f.level, true
	}
	if t < f.level {
		cur := f.level
		dwelled := now-f.entered >= f.cfg.Dwell[cur]
		below := score <= f.cfg.Up[cur]*f.cfg.Hysteresis
		if dwelled && below {
			f.level = cur - 1
			f.entered = now
			return f.level, true
		}
	}
	return f.level, false
}
