package threat

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"sdmmon/internal/obs"
)

// SignalPolicy couples one signal's baseline tuning with its absolute
// escape hatch.
type SignalPolicy struct {
	Baseline BaselineConfig
	// AbsHigh, when > 0, is the raw signal value at which the signal scores
	// at least the HIGH threshold even when its baseline has not armed —
	// the cold-start cover: an attack in the first ticks of a deployment
	// must not ride out the warmup window.
	AbsHigh float64
}

// DefaultSignalPolicies returns the per-signal tuning the campaigns are
// pinned against. All four signals are rates in [0, 1].
func DefaultSignalPolicies() [NumSignals]SignalPolicy {
	rate := BaselineConfig{Alpha: 0.2, Warmup: 8, MinStd: 0.02}
	var p [NumSignals]SignalPolicy
	p[SigAlarmRate] = SignalPolicy{Baseline: rate, AbsHigh: 0.5}
	p[SigFaultRate] = SignalPolicy{Baseline: rate, AbsHigh: 0.5}
	p[SigCycleOutlier] = SignalPolicy{Baseline: rate, AbsHigh: 0.5}
	p[SigBackpressure] = SignalPolicy{Baseline: BaselineConfig{Alpha: 0.2, Warmup: 8, MinStd: 0.05}, AbsHigh: 0.9}
	return p
}

// EngineConfig configures a threat engine.
type EngineConfig struct {
	// Signals is the per-signal baseline and absolute-threshold tuning.
	Signals [NumSignals]SignalPolicy
	// FSM is the classifier tuning.
	FSM FSMConfig
	// Policy maps levels to response actions.
	Policy Policy
	// Responder executes the actions; nil runs the engine record-only
	// (levels and incidents, no responses).
	Responder Responder
	// CaptureAt is the lowest escalation target that triggers a forensic
	// capture; the zero value selects High.
	CaptureAt Level
	// CaptureWindow bounds the pre-trigger events captured per forensic
	// collector; 0 selects 48.
	CaptureWindow int
	// FreezeAt is the level at or above which baselines stop absorbing
	// samples (the baseline-poisoning guard — an ongoing attack must not
	// normalize itself); the zero value selects Medium.
	FreezeAt Level
	// SynergyWeight scales the second-worst signal's contribution to a
	// shard's combined score when that signal is itself at least at the
	// LOW threshold (simultaneous multi-signal escalation); 0 selects 0.5.
	SynergyWeight float64
	// Forensics are the collectors whose EventRings incident records
	// snapshot; index = shard.
	Forensics []*obs.Collector
	// StatsFn, when set, supplies counter snapshots; incidents carry the
	// delta since the previous capture.
	StatsFn func() map[string]uint64
	// Obs receives the engine's own telemetry (threat_* metrics and
	// threat_level/threat_response/incident ring events on ring RingID).
	// Nil disables it.
	Obs *obs.Collector
	// RingID selects the engine's event ring in Obs.
	RingID int
}

// DefaultEngineConfig returns a record-only engine configuration with the
// default signal tuning, classifier, and policy.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{
		Signals: DefaultSignalPolicies(),
		FSM:     DefaultFSMConfig(),
		Policy:  DefaultPolicy(),
	}
}

// baseKey identifies one (source, signal) baseline.
type baseKey struct {
	shard, core int
	signal      Signal
}

// Engine is the graded threat-response engine: EWMA baselines over the fed
// signals, the classifier FSM, policy-driven responses, and forensic
// capture. It is passive — it changes state only inside Tick, and only as
// a function of the samples and virtual time it is given — which is what
// makes trajectories replayable. Safe for concurrent use; Tick calls
// serialize.
type Engine struct {
	mu        sync.Mutex
	cfg       EngineConfig
	fsm       *FSM
	base      map[baseKey]*Baseline
	started   bool
	last      Tick
	traj      []LevelTransition
	incidents []IncidentRecord
	lastStats map[string]uint64

	ring                 *obs.EventRing
	gLevel               *obs.Gauge
	cEsc, cDeesc         *obs.Counter
	cIncident, cResponse *obs.Counter
}

// NewEngine validates the configuration and builds an engine at level None.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	for i := 0; i < NumSignals; i++ {
		if err := cfg.Signals[i].Baseline.Validate(); err != nil {
			return nil, fmt.Errorf("%w (signal %s)", err, Signal(i))
		}
		if cfg.Signals[i].AbsHigh < 0 {
			return nil, fmt.Errorf("threat: signal %s AbsHigh %v must be >= 0", Signal(i), cfg.Signals[i].AbsHigh)
		}
	}
	fsm, err := NewFSM(cfg.FSM)
	if err != nil {
		return nil, err
	}
	if cfg.CaptureAt == None {
		cfg.CaptureAt = High
	}
	if cfg.CaptureWindow == 0 {
		cfg.CaptureWindow = 48
	}
	if cfg.CaptureWindow < 0 {
		return nil, fmt.Errorf("threat: capture window %d must be >= 0", cfg.CaptureWindow)
	}
	if cfg.FreezeAt == None {
		cfg.FreezeAt = Medium
	}
	if cfg.SynergyWeight == 0 {
		cfg.SynergyWeight = 0.5
	}
	if cfg.SynergyWeight < 0 {
		return nil, fmt.Errorf("threat: synergy weight %v must be >= 0", cfg.SynergyWeight)
	}
	e := &Engine{cfg: cfg, fsm: fsm, base: map[baseKey]*Baseline{}}
	if cfg.Obs != nil {
		reg := cfg.Obs.Registry()
		e.ring = cfg.Obs.Ring(cfg.RingID)
		e.gLevel = reg.Gauge("threat_level")
		e.cEsc = reg.Counter("threat_escalations_total")
		e.cDeesc = reg.Counter("threat_deescalations_total")
		e.cIncident = reg.Counter("threat_incidents_total")
		e.cResponse = reg.Counter("threat_responses_total")
	}
	return e, nil
}

// Level reports the current threat level.
func (e *Engine) Level() Level {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fsm.Level()
}

// Trajectory returns a copy of every level transition so far.
func (e *Engine) Trajectory() []LevelTransition {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]LevelTransition(nil), e.traj...)
}

// Incidents returns a copy of every captured incident record.
func (e *Engine) Incidents() []IncidentRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]IncidentRecord(nil), e.incidents...)
}

// IncidentBytes returns the canonical JSON-lines serialization of every
// incident — the byte string the replay suite compares across runs.
func (e *Engine) IncidentBytes() ([]byte, error) {
	e.mu.Lock()
	records := append([]IncidentRecord(nil), e.incidents...)
	e.mu.Unlock()
	return MarshalIncidents(records)
}

// shardAgg accumulates one shard's per-tick scoring.
type shardAgg struct {
	top, second float64
	topCore     int
}

// Tick feeds one virtual-time step of samples through the engine: score
// against baselines, classify, respond, capture. now must be strictly
// monotonic across calls. The returned transition is non-nil when the
// level changed this tick. Action errors are joined and returned after the
// tick's state (trajectory, incidents) is fully recorded — a failing
// responder never desynchronizes the classifier.
func (e *Engine) Tick(now Tick, samples []Sample) (*LevelTransition, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started && now <= e.last {
		return nil, fmt.Errorf("threat: non-monotonic tick %d after %d", now, e.last)
	}
	e.started = true
	e.last = now

	// Score every sample against its pre-tick baseline.
	readings := make([]SignalReading, len(samples))
	aggs := map[int]*shardAgg{}
	for i, s := range samples {
		if int(s.Signal) >= NumSignals {
			return nil, fmt.Errorf("threat: sample %d has unknown signal %d", i, s.Signal)
		}
		k := baseKey{s.Shard, s.Core, s.Signal}
		b := e.base[k]
		if b == nil {
			b = NewBaseline(e.cfg.Signals[s.Signal].Baseline)
			e.base[k] = b
		}
		score := b.Score(s.Value)
		if abs := e.cfg.Signals[s.Signal].AbsHigh; abs > 0 && s.Value >= abs && score < e.cfg.FSM.Up[High] {
			score = e.cfg.FSM.Up[High]
		}
		readings[i] = SignalReading{
			Shard: s.Shard, Core: s.Core, Signal: s.Signal.String(),
			Value: s.Value, Score: score,
		}
		a := aggs[s.Shard]
		if a == nil {
			a = &shardAgg{topCore: -1}
			aggs[s.Shard] = a
		}
		if score > a.top {
			a.second = a.top
			a.top = score
			a.topCore = s.Core
		} else if score > a.second {
			a.second = score
		}
	}

	// Combine per shard (worst signal plus a synergy bonus for a second
	// elevated signal), then pick the overall worst with a deterministic
	// lowest-shard tie-break.
	shards := make([]int, 0, len(aggs))
	for id := range aggs {
		shards = append(shards, id)
	}
	sort.Ints(shards)
	overall, offShard, offCore := 0.0, -1, -1
	for _, id := range shards {
		a := aggs[id]
		combined := a.top
		if a.second >= e.cfg.FSM.Up[Low] {
			combined += e.cfg.SynergyWeight * a.second
		}
		if combined > overall {
			overall, offShard, offCore = combined, id, a.topCore
		}
	}

	from := e.fsm.Level()
	level, changed := e.fsm.Step(now, overall)

	// Fold samples into baselines unless the post-step level freezes them:
	// an escalating tick must not absorb its own attack evidence.
	if level < e.cfg.FreezeAt {
		for _, s := range samples {
			e.base[baseKey{s.Shard, s.Core, s.Signal}].Observe(s.Value)
		}
	}

	if !changed {
		return nil, nil
	}

	tr := LevelTransition{
		Tick: uint64(now), From: from, To: level, Score: overall,
		Shard: offShard, Core: offCore,
	}
	var actionErrs []error
	if level > from {
		// Escalation: sweep the policy of every level entered, first
		// occurrence of each action wins (a multi-level jump must not
		// tighten the same shard twice).
		fired := [NumActions]bool{}
		var acts []Action
		for l := from + 1; l <= level; l++ {
			for _, a := range e.cfg.Policy.For(l) {
				if !fired[a] {
					fired[a] = true
					acts = append(acts, a)
				}
			}
		}
		for _, a := range acts {
			tr.Actions = append(tr.Actions, a.String())
		}

		// Forensic capture happens before any response fires, so the
		// event window is strictly pre-trigger.
		if level >= e.cfg.CaptureAt {
			e.capture(&tr, readings)
		}

		if e.cfg.Responder != nil {
			for _, a := range acts {
				if err := e.fire(a, offShard, offCore); err != nil {
					actionErrs = append(actionErrs, fmt.Errorf("%s: %w", a, err))
				} else {
					e.cResponse.Inc()
					e.ring.Emit(obs.EvThreatResponse, 0, uint64(a))
				}
			}
		}
		e.cEsc.Inc()
	} else {
		if e.cfg.Responder != nil {
			if err := e.cfg.Responder.Relax(level); err != nil {
				actionErrs = append(actionErrs, fmt.Errorf("relax: %w", err))
			}
		}
		e.cDeesc.Inc()
	}

	e.traj = append(e.traj, tr)
	e.gLevel.Set(float64(level))
	e.ring.Emit(obs.EvThreatLevel, 0, uint64(from)<<32|uint64(level))
	return &tr, errors.Join(actionErrs...)
}

// capture builds one incident record from the transition about to be
// returned and the trigger tick's readings. Called with e.mu held, before
// any response action fires.
func (e *Engine) capture(tr *LevelTransition, readings []SignalReading) {
	rec := IncidentRecord{
		ID: uint64(len(e.incidents) + 1), Tick: tr.Tick,
		From: tr.From, To: tr.To, Score: tr.Score,
		Shard: tr.Shard, Core: tr.Core,
		Readings: append([]SignalReading(nil), readings...),
		Events:   captureEvents(e.cfg.Forensics, e.cfg.CaptureWindow),
		Actions:  append([]string(nil), tr.Actions...),
	}
	if e.cfg.StatsFn != nil {
		cur := e.cfg.StatsFn()
		delta := map[string]uint64{}
		for k, v := range cur {
			if prev := e.lastStats[k]; v > prev {
				delta[k] = v - prev
			}
		}
		if len(delta) > 0 {
			rec.StatsDelta = delta
		}
		e.lastStats = cur
	}
	e.incidents = append(e.incidents, rec)
	e.cIncident.Inc()
	e.ring.Emit(obs.EvIncident, 0, rec.ID)
}

// fire dispatches one action to the responder.
func (e *Engine) fire(a Action, shard, core int) error {
	r := e.cfg.Responder
	switch a {
	case ActTightenAdmission:
		return r.TightenAdmission(shard)
	case ActIsolateCore:
		if core < 0 {
			// The offending signal was shard-scoped; there is no specific
			// core to isolate. Not an error — the shard-level responses
			// carry the load.
			return nil
		}
		return r.IsolateCore(shard, core)
	case ActRehashShard:
		return r.RehashShard(shard)
	case ActZeroizeStaged:
		return r.ZeroizeStaged()
	case ActLockdown:
		return r.Lockdown()
	}
	return fmt.Errorf("threat: unknown action %d", a)
}
