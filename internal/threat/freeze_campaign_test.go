package threat_test

import (
	"testing"

	"sdmmon/internal/campaign"
	"sdmmon/internal/threat"
)

// FreezeAt under adversarial pressure: the campaign engine's poison family
// generates a baseline-poisoning ramp (0 → 0.10 → 0.22 → 0.28 → strike at
// 3/7 duty) against a live engine. With the campaign default FreezeAt LOW
// the baselines freeze at the clean floor on the first LOW transition and
// the classifier reaches MEDIUM while the ramp is still climbing; with
// FreezeAt CRITICAL the EWMA keeps absorbing the ramp and the strike lands
// a z-score under 2 — the engine never leaves LOW. The freeze gate is the
// only difference between the two runs.
func TestFreezeAtContainsCampaignPoisoning(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		frozen, err := campaign.RunCampaign(campaign.Config{
			Family: campaign.FamilyPoison, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		unfrozen, err := campaign.RunCampaign(campaign.Config{
			Family: campaign.FamilyPoison, Seed: seed, FreezeAt: threat.Critical,
		})
		if err != nil {
			t.Fatal(err)
		}

		if err := frozen.Check(); err != nil {
			t.Errorf("seed %d: frozen run failed its own check: %v", seed, err)
		}
		if frozen.PacketsToLevel[threat.Medium] < 0 {
			t.Errorf("seed %d: frozen baselines never reached MEDIUM — FreezeAt is not containing the ramp", seed)
		}
		if unfrozen.PacketsToLevel[threat.Medium] >= 0 {
			t.Errorf("seed %d: unfrozen baselines reached MEDIUM at packet %d — the ramp failed to poison them",
				seed, unfrozen.PacketsToLevel[threat.Medium])
		}
		if unfrozen.Peak >= frozen.Peak {
			t.Errorf("seed %d: unfrozen peak %v >= frozen peak %v — freezing bought nothing",
				seed, unfrozen.Peak, frozen.Peak)
		}
		// Both engines ran the identical packet sequence; the evasion depth
		// (poison packets absorbed at or below LOW) must be strictly larger
		// without freezing.
		if unfrozen.EvasionDepth <= frozen.EvasionDepth {
			t.Errorf("seed %d: unfrozen evasion depth %.0f <= frozen %.0f",
				seed, unfrozen.EvasionDepth, frozen.EvasionDepth)
		}
		t.Logf("seed %d: frozen peak=%v toMedium=%d depth=%.0f; unfrozen peak=%v toMedium=%d depth=%.0f",
			seed, frozen.Peak, frozen.PacketsToLevel[threat.Medium], frozen.EvasionDepth,
			unfrozen.Peak, unfrozen.PacketsToLevel[threat.Medium], unfrozen.EvasionDepth)
	}
}
