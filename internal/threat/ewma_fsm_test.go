package threat

import (
	"math"
	"testing"
)

// Table-driven edge cases for the EWMA baseline: cold start, zero-variance
// streams, absorption, and the scoring asymmetry (only positive deviations
// score).
func TestBaselineEdgeCases(t *testing.T) {
	cfg := BaselineConfig{Alpha: 0.2, Warmup: 4, MinStd: 0.02}
	cases := []struct {
		name    string
		observe []float64
		probe   float64
		want    func(score float64) bool
		desc    string
	}{
		{
			name:    "cold start scores zero",
			observe: []float64{0, 0, 0}, // one short of warmup
			probe:   100,
			want:    func(s float64) bool { return s == 0 },
			desc:    "an unarmed baseline must not score, however extreme the sample",
		},
		{
			name:    "arms exactly at warmup",
			observe: []float64{0, 0, 0, 0},
			probe:   1,
			want:    func(s float64) bool { return s > 0 },
			desc:    "the warmup-th observation arms the baseline",
		},
		{
			name:    "zero-variance stream uses the std floor",
			observe: []float64{5, 5, 5, 5, 5, 5},
			probe:   5.2,
			// mean == 5 exactly, var == 0, so score = 0.2/MinStd = 10.
			want: func(s float64) bool { return math.Abs(s-10) < 1e-9 },
			desc: "a constant stream must yield large-but-finite scores, not a division blow-up",
		},
		{
			name:    "sample at the mean scores zero",
			observe: []float64{3, 3, 3, 3},
			probe:   3,
			want:    func(s float64) bool { return s == 0 },
			desc:    "zero deviation is zero score",
		},
		{
			name:    "negative deviation scores zero",
			observe: []float64{3, 3, 3, 3},
			probe:   1,
			want:    func(s float64) bool { return s == 0 },
			desc:    "quieter-than-baseline is not a threat",
		},
		{
			name:    "noisy stream raises the std above the floor",
			observe: []float64{0, 1, 0, 1, 0, 1, 0, 1},
			probe:   2,
			// With real variance the score must be far below the
			// floor-divided value (2-mean)/MinStd.
			want: func(s float64) bool { return s > 0 && s < 10 },
			desc: "observed variance must dampen scores",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBaseline(cfg)
			for _, v := range tc.observe {
				b.Observe(v)
			}
			if got := b.Score(tc.probe); !tc.want(got) {
				t.Errorf("score(%v) = %v after %v: %s", tc.probe, got, tc.observe, tc.desc)
			}
		})
	}
}

func TestBaselineFirstObservationSeedsMean(t *testing.T) {
	b := NewBaseline(BaselineConfig{Alpha: 0.1, Warmup: 1, MinStd: 0.01})
	b.Observe(40)
	if b.Mean() != 40 {
		t.Fatalf("first observation mean = %v, want exactly 40 (no decay from a zero prior)", b.Mean())
	}
}

func TestBaselineConfigValidate(t *testing.T) {
	bad := []BaselineConfig{
		{Alpha: 0, Warmup: 1, MinStd: 0.1},
		{Alpha: 1.5, Warmup: 1, MinStd: 0.1},
		{Alpha: 0.5, Warmup: 0, MinStd: 0.1},
		{Alpha: 0.5, Warmup: 1, MinStd: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an unusable config", cfg)
		}
	}
	if err := (BaselineConfig{Alpha: 1, Warmup: 1, MinStd: 0.001}).Validate(); err != nil {
		t.Errorf("boundary config rejected: %v", err)
	}
}

// Table-driven FSM edge cases: hysteresis on the boundary, dwell-time
// expiry in virtual time, multi-level jumps, and one-level-at-a-time
// de-escalation.
func TestFSMEdgeCases(t *testing.T) {
	cfg := DefaultFSMConfig() // Up [0 1.5 3 6 12], hysteresis 0.6, dwell [0 2 3 4 6]
	type step struct {
		tick  Tick
		score float64
		want  Level
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "escalates exactly at the threshold",
			steps: []step{
				{0, 1.4999, None},
				{1, 1.5, Low},
			},
		},
		{
			name: "multi-level jump in one step",
			steps: []step{
				{0, 0, None},
				{1, 12, Critical},
			},
		},
		{
			name: "hysteresis holds the level inside the band",
			steps: []step{
				{0, 3, Medium},
				// Dwell (3 ticks) expires by tick 10, so only hysteresis can
				// hold the level: above 3*0.6 stays, at or below it leaves
				// (3*0.6 is 1.7999… in float64, so probe either side of it).
				{10, 1.81, Medium},
				{11, 1.81, Medium},
				{12, 1.79, Low},
			},
		},
		{
			name: "dwell blocks early de-escalation in virtual time",
			steps: []step{
				{5, 6, High},
				{6, 0, High},   // dwelled 1 < 4
				{8, 0, High},   // dwelled 3 < 4
				{9, 0, Medium}, // dwelled 4 >= 4
			},
		},
		{
			name: "de-escalation is one level per step",
			steps: []step{
				{0, 12, Critical},
				{6, 0, High},
				{7, 0, High},    // High entered at 6; dwell 4
				{10, 0, Medium}, // dwelled 4
			},
		},
		{
			name: "re-escalation resets the dwell clock",
			steps: []step{
				{0, 3, Medium},
				{1, 6, High},
				{4, 0, High},   // High entered at 1, dwelled 3 < 4
				{5, 0, Medium}, // dwelled 4
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := NewFSM(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, st := range tc.steps {
				got, _ := f.Step(st.tick, st.score)
				if got != st.want {
					t.Fatalf("step %d (tick %d, score %v): level = %s, want %s",
						i, st.tick, st.score, got, st.want)
				}
			}
		})
	}
}

func TestFSMConfigValidate(t *testing.T) {
	bad := []FSMConfig{
		{Up: [NumLevels]float64{0, 2, 2, 3, 4}, Hysteresis: 0.5}, // not strictly ascending
		{Up: [NumLevels]float64{0, 0, 1, 2, 3}, Hysteresis: 0.5}, // Up[Low] not positive
		{Up: [NumLevels]float64{0, 1, 2, 3, 4}, Hysteresis: 0},   // hysteresis out of range
		{Up: [NumLevels]float64{0, 1, 2, 3, 4}, Hysteresis: 1.1},
	}
	for _, cfg := range bad {
		if _, err := NewFSM(cfg); err == nil {
			t.Errorf("NewFSM(%+v) accepted an unusable config", cfg)
		}
	}
}

// Simultaneous multi-signal escalation: two elevated signals on one shard
// combine through the synergy term and jump levels a single signal would
// not reach.
func TestEngineMultiSignalSynergy(t *testing.T) {
	cfg := DefaultEngineConfig()
	cfg.Signals = DefaultSignalPolicies()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := []Sample{
		{Shard: 0, Core: 0, Signal: SigAlarmRate, Value: 0},
		{Shard: 0, Core: 0, Signal: SigCycleOutlier, Value: 0},
	}
	for tick := 0; tick < 10; tick++ {
		if _, err := eng.Tick(Tick(tick), warm); err != nil {
			t.Fatal(err)
		}
	}
	// Each signal alone scores value/MinStd = 0.11/0.02 = 5.5 (HIGH is 6,
	// so neither reaches HIGH solo); together 5.5 + 0.5*5.5 = 8.25 does.
	tr, err := eng.Tick(10, []Sample{
		{Shard: 0, Core: 0, Signal: SigAlarmRate, Value: 0.11},
		{Shard: 0, Core: 0, Signal: SigCycleOutlier, Value: 0.11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || tr.To != High {
		t.Fatalf("simultaneous two-signal tick = %+v, want escalation to %s via synergy", tr, High)
	}
}
