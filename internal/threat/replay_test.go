package threat

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/shard"
)

// The headline guarantee: a campaign is a pure function of its
// configuration. Running the same seeded campaign twice must reproduce the
// threat-level trajectory exactly and serialize byte-identical incident
// records.
func TestThreatCampaignReplayDeterministic(t *testing.T) {
	for _, family := range Families() {
		t.Run(family, func(t *testing.T) {
			cfg := CampaignConfig{Family: family, Seed: 7}
			a, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunCampaign(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Check(); err != nil {
				t.Errorf("first run fails its own family assertions: %v", err)
			}
			if !reflect.DeepEqual(a.Trajectory, b.Trajectory) {
				t.Errorf("trajectories diverged across replays:\n  run A: %+v\n  run B: %+v",
					a.Trajectory, b.Trajectory)
			}
			if !bytes.Equal(a.IncidentBytes, b.IncidentBytes) {
				t.Errorf("incident records not byte-identical across replays: %d vs %d bytes",
					len(a.IncidentBytes), len(b.IncidentBytes))
			}
			if a.Stats != b.Stats {
				t.Errorf("packet accounting diverged: %+v vs %+v", a.Stats, b.Stats)
			}
			// Each serialized incident must survive a strict decode and
			// re-encode to the same bytes (the fixed point the fuzzer widens).
			for i := range a.Incidents {
				raw, err := a.Incidents[i].Marshal()
				if err != nil {
					t.Fatalf("incident %d: %v", i, err)
				}
				back, err := UnmarshalIncident(raw)
				if err != nil {
					t.Fatalf("incident %d does not survive a strict decode: %v", i, err)
				}
				raw2, err := back.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(raw, raw2) {
					t.Errorf("incident %d is not a marshal fixed point", i)
				}
			}
		})
	}
}

// Every campaign family must hold its qualitative trajectory across seeds,
// not just at one lucky value.
func TestThreatCampaignSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed campaign sweep")
	}
	for _, family := range Families() {
		for seed := int64(1); seed <= 5; seed++ {
			res, err := RunCampaign(CampaignConfig{Family: family, Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", family, seed, err)
			}
			if err := res.Check(); err != nil {
				t.Errorf("%s seed %d: %v", family, seed, err)
			}
		}
	}
}

// The evasion regression: an attack tuned just under the EWMA baseline's
// sensitivity must never escalate past LOW, never capture an incident, and
// never trigger a response.
func TestThreatSlowDripStaysLow(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{Family: FamilySlowDrip, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak > Low {
		t.Errorf("slow drip escalated to %s, must stay <= %s", res.Peak, Low)
	}
	if len(res.Incidents) != 0 {
		t.Errorf("slow drip captured %d incidents, want 0", len(res.Incidents))
	}
	if res.IsolatedCores != 0 || res.FailedShards != 0 || res.LockdownFired || res.StagedZeroized {
		t.Errorf("slow drip triggered responses: %+v", res)
	}
	if !res.Stats.Conserved() {
		t.Errorf("packet conservation violated: %+v", res.Stats)
	}
	if res.Stats.Alarms == 0 {
		t.Error("slow drip never alarmed at all — the drip fixture is not attacking")
	}
}

// Campaign model conservation must hold mid-run at every tick, not just at
// the end — responses (rehash sheds, lockdown starvation, tightening) fire
// mid-traffic and each must keep the books balanced. Exercised across the
// families so every response path is covered.
func TestThreatCampaignConservationPerFamily(t *testing.T) {
	for _, family := range Families() {
		res, err := RunCampaign(CampaignConfig{Family: family, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if !res.Stats.Conserved() {
			t.Errorf("%s: conservation violated: %+v", family, res.Stats)
		}
	}
}

// liveNP builds one installed line card publishing to its own collector.
func liveNP(t *testing.T, cores int, seed int64, col *obs.Collector) *npu.NP {
	t.Helper()
	np, err := npu.New(npu.Config{Cores: cores, MonitorsEnabled: true, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	c := newTestCampaignBundle(t, seed)
	if err := np.InstallAll(c.app, c.bin, c.gb, c.param); err != nil {
		t.Fatal(err)
	}
	return np
}

type testBundle struct {
	app     string
	bin, gb []byte
	param   uint32
}

// newTestCampaignBundle builds the ipv4cm program + monitor graph the
// live-plane tests install.
func newTestCampaignBundle(t *testing.T, seed int64) testBundle {
	t.Helper()
	app, err := apps.ByName("ipv4cm")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	param := uint32(seed)*2654435761 + 0x7417
	g, err := monitor.Extract(prog, mhash.NewMerkle(param))
	if err != nil {
		t.Fatal(err)
	}
	return testBundle{app: "ipv4cm", bin: prog.Serialize(), gb: g.Serialize(), param: param}
}

// TestThreatEngineConcurrentDrains runs the real engine — Sampler,
// PlaneResponder, forensic capture — against a live concurrent shard.Plane
// while submitter goroutines race the workers. Run under -race this pins
// the engine's thread-safety against the plane; it makes no byte-identity
// claims (the concurrent plane cannot give them and does not try).
func TestThreatEngineConcurrentDrains(t *testing.T) {
	const shards, cores = 3, 2
	cols := make([]*obs.Collector, shards)
	nps := make([]*npu.NP, shards)
	for i := range nps {
		cols[i] = obs.New(64)
		nps[i] = liveNP(t, cores, int64(40+i), cols[i])
	}
	plane, err := shard.NewPlane(shard.Config{
		NPs:           nps,
		QueueCapacity: 32,
		MarkThreshold: 1, // mark aggressively so a surge reads as pressure
		BatchSize:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	responder, err := NewPlaneResponder(plane, nps)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := NewSampler(SamplerConfig{Plane: plane, NPs: nps, Collectors: cols})
	if err != nil {
		t.Fatal(err)
	}
	ecfg := CampaignEngineConfig()
	ecfg.Responder = responder
	ecfg.Forensics = cols
	eng, err := NewEngine(ecfg)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := network.NewFlowGenerator(256, 17)
	if err != nil {
		t.Fatal(err)
	}
	var genMu sync.Mutex
	next := func() []byte {
		genMu.Lock()
		defer genMu.Unlock()
		return gen.Next()
	}

	submit := func(n, workers int) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n/workers; i++ {
					plane.Submit(next())
				}
			}()
		}
		wg.Wait()
	}

	escalated := false
	for tick := 0; tick < 24; tick++ {
		if tick >= 10 && tick < 14 {
			// Surge phase: far more arrivals than the queues hold, from
			// racing submitters. Marks and tail drops spike the
			// backpressure signal.
			submit(4000, 8)
		} else {
			submit(30, 3)
		}
		tr, err := eng.Tick(Tick(tick), sampler.Collect())
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if tr != nil && tr.To > tr.From {
			escalated = true
		}
		// Conservation must hold at every mid-run snapshot, with responses
		// (tighten, lockdown, relax) firing between submissions.
		if st := plane.Stats(); !st.Conserved() {
			t.Fatalf("tick %d: mid-run conservation violated: %+v", tick, st)
		}
	}
	plane.Close()

	st := plane.Stats()
	if !st.Conserved() {
		t.Fatalf("conservation violated after close: %+v", st)
	}
	if !escalated {
		t.Error("the surge never escalated the engine — live wiring is not sensing the plane")
	}
	traj := eng.Trajectory()
	for i := 1; i < len(traj); i++ {
		if traj[i].Tick <= traj[i-1].Tick {
			t.Errorf("trajectory ticks not strictly increasing: %+v", traj)
		}
	}
	if _, err := eng.IncidentBytes(); err != nil {
		t.Errorf("incident serialization failed: %v", err)
	}
}

// A level trajectory rendered per family, pinned for documentation drift:
// this is the table EXPERIMENTS.md cites.
func TestThreatCampaignTrajectoryShape(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{Family: FamilyRamp, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var ups []Level
	for _, tr := range res.Trajectory {
		if tr.To > tr.From {
			ups = append(ups, tr.To)
		}
	}
	want := []Level{Low, Medium, High}
	if !reflect.DeepEqual(ups, want) {
		t.Errorf("ramp escalation sequence = %v, want %v (staircase duty must walk the classifier up)",
			ups, want)
	}
	// The ramp's incident must carry forensics: readings, pre-trigger
	// events, and the actions that fired.
	if len(res.Incidents) == 0 {
		t.Fatal("ramp captured no incidents")
	}
	inc := res.Incidents[0]
	if inc.To != High || len(inc.Readings) == 0 || len(inc.Actions) == 0 {
		t.Errorf("incident missing forensics: %+v", inc)
	}
	if len(inc.Events) == 0 {
		t.Error("incident captured no pre-trigger events")
	}
	if fmt.Sprintf("%v", inc.StatsDelta) == "map[]" {
		t.Error("incident carries no stats delta")
	}
}
