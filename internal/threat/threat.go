// Package threat grades the monitored data plane's response to attacks and
// faults. The paper's defense is binary — a monitor mismatch drops the
// packet, and (since the supervisor) a persistently faulty core is
// quarantined — but a deployed router needs proportionate responses and
// evidence. This package supplies both, following the behavioral-baseline
// shape of the co-processor monitoring literature (Chevalier et al.,
// R5Detect) rather than single-event triggers:
//
//   - EWMA baselines (ewma.go) learn each signal's normal mean and spread —
//     per-core alarm rate, per-shard fault rate, packet-cycle outliers from
//     the np_packet_cycles histograms, ingress backpressure — and score new
//     samples by their positive deviation in σ units;
//
//   - a threat-classifier FSM (fsm.go) folds the worst deviation into a
//     graded level, NONE→LOW→MEDIUM→HIGH→CRITICAL, with hysteresis (a
//     score in the band below the entry threshold holds the level) and
//     per-level dwell times in virtual time (de-escalation is slow and
//     stepwise; escalation is immediate and may jump levels);
//
//   - a pluggable response policy (policy.go) maps levels to graded
//     actions — tighten a shard's admission control, isolate the offending
//     core, rehash flows off a shard, zeroize staged upgrade bundles, full
//     plane lockdown — fired through a Responder so the engine stays
//     decoupled from the plane it protects (responder.go binds the real
//     shard.Plane; campaign.go binds the deterministic replay model);
//
//   - a forensic capture unit (incident.go) that, on HIGH/CRITICAL
//     escalations, snapshots the pre-trigger obs EventRing window plus a
//     stats delta into a serializable incident record.
//
// The headline guarantee is determinism: the engine is a pure function of
// the samples it is fed and the virtual time it is fed them at. The same
// seeded fault campaign reproduces the same threat-level trajectory and the
// same incident records, byte for byte — pinned by the replay test suite
// and the npsim -threat drill.
package threat

import "fmt"

// Level is the graded threat level.
type Level uint8

const (
	// None: all signals within baseline.
	None Level = iota
	// Low: a signal deviates noticeably; observe, no response.
	Low
	// Medium: sustained or multi-signal deviation; soft responses
	// (admission tightening) are justified.
	Medium
	// High: attack-consistent behavior; offending components are isolated
	// and forensics captured.
	High
	// Critical: the plane itself is at risk; flows are rehashed away,
	// staged bundles zeroized, and the plane may be locked down.
	Critical
	// NumLevels bounds per-level arrays.
	NumLevels int = iota
)

var levelNames = [NumLevels]string{"none", "low", "medium", "high", "critical"}

func (l Level) String() string {
	if int(l) < NumLevels {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// MarshalText renders the level name (JSON-friendly).
func (l Level) MarshalText() ([]byte, error) {
	if int(l) >= NumLevels {
		return nil, fmt.Errorf("threat: level %d out of range", uint8(l))
	}
	return []byte(levelNames[l]), nil
}

// UnmarshalText parses a level name, rejecting unknown names loudly.
func (l *Level) UnmarshalText(b []byte) error {
	v, err := ParseLevel(string(b))
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// ParseLevel resolves a level name.
func ParseLevel(s string) (Level, error) {
	for i, n := range levelNames {
		if n == s {
			return Level(i), nil
		}
	}
	return None, fmt.Errorf("threat: unknown level %q", s)
}

// Signal identifies one monitored behavioral signal.
type Signal uint8

const (
	// SigAlarmRate: monitor alarms per packet (per-core or per-shard).
	SigAlarmRate Signal = iota
	// SigFaultRate: architectural faults (including watchdog trips and
	// hash-miss drops) per packet.
	SigFaultRate
	// SigCycleOutlier: fraction of packets whose cycle cost lands beyond
	// the outlier bound of the np_packet_cycles histogram.
	SigCycleOutlier
	// SigBackpressure: admission-control pressure at a shard's ingress —
	// tail drops plus CE marks per arrival.
	SigBackpressure
	// NumSignals bounds per-signal arrays.
	NumSignals int = iota
)

var signalNames = [NumSignals]string{
	"alarm_rate", "fault_rate", "cycle_outlier", "backpressure",
}

func (s Signal) String() string {
	if int(s) < NumSignals {
		return signalNames[s]
	}
	return fmt.Sprintf("signal(%d)", uint8(s))
}

// Tick is virtual time as the engine sees it: an opaque monotonic counter
// the caller advances (the campaign driver ticks once per sampling window).
// Dwell times are expressed in ticks, so trajectories are independent of
// wall clocks — the root of the replay guarantee.
type Tick uint64

// Sample is one signal observation delivered to the engine. Core is -1 for
// shard-scoped signals. The engine processes samples in the order given, so
// a deterministic producer yields a deterministic trajectory.
type Sample struct {
	Shard  int
	Core   int
	Signal Signal
	Value  float64
}

// SignalReading is the scored, serializable form of a sample — what
// transitions and incident records carry.
type SignalReading struct {
	Shard  int     `json:"shard"`
	Core   int     `json:"core"`
	Signal string  `json:"signal"`
	Value  float64 `json:"value"`
	Score  float64 `json:"score"`
}

// LevelTransition records one FSM level change.
type LevelTransition struct {
	Tick  uint64  `json:"tick"`
	From  Level   `json:"from"`
	To    Level   `json:"to"`
	Score float64 `json:"score"`
	// Shard/Core identify the offender: the source of the worst-scoring
	// signal at the transition tick (Core -1 when shard-scoped).
	Shard int `json:"shard"`
	Core  int `json:"core"`
	// Actions lists the response actions fired on this escalation, in
	// firing order (empty on de-escalations).
	Actions []string `json:"actions,omitempty"`
}
