package threat

import (
	"fmt"

	"sdmmon/internal/apps"
	"sdmmon/internal/fault"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

// A campaign is a seeded, fully synchronous fault drill against real NPs
// and a virtual-time queue model of the traffic plane. Everything in it —
// traffic, fault injection, dispatch, queueing, sampling, and the engine's
// responses — advances in lockstep with the virtual clock and draws all
// randomness from the campaign seed, so a campaign is a pure function of
// its configuration: the same seed reproduces the same threat-level
// trajectory and byte-identical incident records. (The live concurrent
// plane is exercised separately, under the race detector; it cannot give
// byte determinism and does not try to.)
//
// The campaign grades per-core alarm rates with a poison duty cycle: each
// tick it corrupts the attacked core's entry instruction, steers the
// attack share of that core's packets through it (every one trips the
// monitor), re-installs the clean bundle, and runs the remainder clean.
// Alarm rate on the core therefore tracks the attack duty exactly, which
// is what lets one mechanism express a sudden burst, a staged ramp, and a
// below-threshold slow drip.

// Campaign families.
const (
	// FamilyBurst is a sudden full-intensity attack on every core of one
	// shard with an arrival surge: NONE jumps straight to CRITICAL, the
	// full response battery fires, and the plane recovers after the burst.
	FamilyBurst = "burst"
	// FamilyRamp is a staged escalation on one core: the duty cycle climbs
	// 1/8 → 1/4 → 1/2 → 1, walking the classifier up LOW → MEDIUM → HIGH,
	// where isolating the core ends the attack and the level walks back
	// down through the dwell times.
	FamilyRamp = "ramp"
	// FamilySlowDrip attacks from the first tick at a duty tuned just under
	// the EWMA baseline's sensitivity: the classifier must stay at or below
	// LOW and capture no incidents (the evasion regression).
	FamilySlowDrip = "slowdrip"
)

// Families lists the campaign families in their canonical order.
func Families() []string { return []string{FamilyBurst, FamilyRamp, FamilySlowDrip} }

// CampaignConfig parameterizes a campaign run.
type CampaignConfig struct {
	Family string
	Seed   int64
	// Shards and Cores size the modeled plane; 0 selects 3 shards of 4
	// cores.
	Shards int
	Cores  int
	// Ticks is the campaign length in virtual ticks; 0 selects the family
	// default.
	Ticks int
	// PacketsPerTick is the plane-wide arrival rate; 0 selects 30 per
	// shard.
	PacketsPerTick int
	// App names the packet application under attack; "" selects ipv4cm.
	App string
}

// Campaign model tuning: per-shard ingress queue and service rates, in
// packets per tick. Service exceeds the nominal arrival rate, so
// backpressure appears only under a genuine surge.
const (
	campQueueCap  = 64
	campMarkAt    = 32
	campDrainRate = 40
	campWarmup    = 12 // clean ticks before any family (except slowdrip) attacks
)

// CampaignEngineConfig is the engine tuning the campaigns are pinned
// against. Alarm/fault MinStd 0.08 maps the poison duty cycle onto the
// default FSM thresholds (duty/0.08: 1/8 → LOW, 1/4 → MEDIUM, 1/2 → HIGH,
// 1 → CRITICAL); FreezeAt Low keeps a staged ramp from normalizing itself
// into the baseline.
func CampaignEngineConfig() EngineConfig {
	cfg := DefaultEngineConfig()
	rate := BaselineConfig{Alpha: 0.2, Warmup: 8, MinStd: 0.08}
	cfg.Signals[SigAlarmRate] = SignalPolicy{Baseline: rate, AbsHigh: 0.6}
	cfg.Signals[SigFaultRate] = SignalPolicy{Baseline: rate, AbsHigh: 0.6}
	cfg.Signals[SigCycleOutlier] = SignalPolicy{Baseline: rate, AbsHigh: 0.6}
	cfg.Signals[SigBackpressure] = SignalPolicy{
		Baseline: BaselineConfig{Alpha: 0.2, Warmup: 8, MinStd: 0.1}, AbsHigh: 0.95,
	}
	cfg.FreezeAt = Low
	return cfg
}

// attackPlan is a family's fault schedule.
type attackPlan struct {
	shard int
	cores []int
	// duty returns the attack share of each attacked core's packets at a
	// tick, in [0, 1].
	duty func(tick int) float64
	// surge returns extra arrivals aimed at the attacked shard at a tick.
	surge func(tick int) int
}

func planFor(family string, shards, cores int) (attackPlan, int, error) {
	switch family {
	case FamilyBurst:
		all := make([]int, cores)
		for i := range all {
			all[i] = i
		}
		return attackPlan{
			shard: 1 % shards,
			cores: all,
			duty: func(t int) float64 {
				if t >= campWarmup && t < campWarmup+6 {
					return 1
				}
				return 0
			},
			surge: func(t int) int {
				if t >= campWarmup && t < campWarmup+6 {
					return 60
				}
				return 0
			},
		}, 36, nil
	case FamilyRamp:
		return attackPlan{
			shard: 0,
			cores: []int{1 % cores},
			duty: func(t int) float64 {
				switch {
				case t < campWarmup:
					return 0
				case t < campWarmup+6:
					return 1.0 / 8
				case t < campWarmup+12:
					return 1.0 / 4
				case t < campWarmup+18:
					return 1.0 / 2
				case t < campWarmup+24:
					return 1
				}
				return 0
			},
			surge: func(int) int { return 0 },
		}, 48, nil
	case FamilySlowDrip:
		return attackPlan{
			shard: (shards - 1) % shards,
			cores: []int{(cores - 1) % cores},
			duty:  func(int) float64 { return 1.0 / 32 },
			surge: func(int) int { return 0 },
		}, 40, nil
	}
	return attackPlan{}, 0, fmt.Errorf("threat: unknown campaign family %q (want %s, %s, or %s)",
		family, FamilyBurst, FamilyRamp, FamilySlowDrip)
}

// CampaignStats is the campaign model's packet accounting. Conservation:
// Arrived == Processed + TailDrops + Starved + Backlog.
type CampaignStats struct {
	Arrived   uint64
	Processed uint64
	TailDrops uint64
	Marked    uint64
	Starved   uint64
	Backlog   uint64
	Alarms    uint64
	Faults    uint64
}

// Conserved checks the model's packet conservation.
func (s CampaignStats) Conserved() bool {
	return s.Arrived == s.Processed+s.TailDrops+s.Starved+s.Backlog
}

// CampaignResult is everything a campaign run produced.
type CampaignResult struct {
	Family     string
	Seed       int64
	Trajectory []LevelTransition
	Incidents  []IncidentRecord
	// IncidentBytes is the canonical serialization of Incidents — the byte
	// string the replay suite compares across runs.
	IncidentBytes []byte
	Peak          Level
	Final         Level
	Stats         CampaignStats
	// PacketsToLevel[l] is how many packets had arrived when the classifier
	// first reached level l; -1 if it never did.
	PacketsToLevel [NumLevels]int64
	// Responses summarizes what the response machinery did.
	IsolatedCores  int
	FailedShards   int
	LockdownFired  bool
	StagedZeroized bool
	StagedLeft     int
}

// Check asserts the family's expected outcome — the self-assertions the
// npsim -threat drill exits non-zero on. Beyond packet conservation, each
// family pins a qualitative trajectory: burst must reach CRITICAL, fire
// the full response battery, and recover; ramp must enter at LOW, peak at
// HIGH or above, and be ended by core isolation; slowdrip must never rise
// past LOW and capture nothing.
func (r *CampaignResult) Check() error {
	if !r.Stats.Conserved() {
		return fmt.Errorf("threat: campaign %s packet conservation violated: %+v", r.Family, r.Stats)
	}
	switch r.Family {
	case FamilyBurst:
		if r.Peak != Critical {
			return fmt.Errorf("threat: burst peaked at %s, want %s", r.Peak, Critical)
		}
		if len(r.Incidents) == 0 {
			return fmt.Errorf("threat: burst captured no incidents")
		}
		if !r.LockdownFired {
			return fmt.Errorf("threat: burst never locked the plane down")
		}
		if r.FailedShards == 0 {
			return fmt.Errorf("threat: burst never rehashed the attacked shard")
		}
		if !r.StagedZeroized || r.StagedLeft != 0 {
			return fmt.Errorf("threat: burst left %d staged bundles (zeroized=%v)", r.StagedLeft, r.StagedZeroized)
		}
		if r.Final > Low {
			return fmt.Errorf("threat: burst ended at %s, want <= %s after recovery", r.Final, Low)
		}
	case FamilyRamp:
		if len(r.Trajectory) == 0 || r.Trajectory[0].To != Low {
			return fmt.Errorf("threat: ramp's first transition is not to %s: %+v", Low, r.Trajectory)
		}
		if r.Peak < High {
			return fmt.Errorf("threat: ramp peaked at %s, want >= %s", r.Peak, High)
		}
		if len(r.Incidents) == 0 {
			return fmt.Errorf("threat: ramp captured no incidents")
		}
		if r.IsolatedCores == 0 {
			return fmt.Errorf("threat: ramp never isolated the offending core")
		}
		if r.Final > Low {
			return fmt.Errorf("threat: ramp ended at %s, want <= %s after isolation", r.Final, Low)
		}
	case FamilySlowDrip:
		if r.Peak > Low {
			return fmt.Errorf("threat: slowdrip escalated to %s — the drip was supposed to stay under the baseline", r.Peak)
		}
		if len(r.Incidents) != 0 {
			return fmt.Errorf("threat: slowdrip captured %d incidents, want 0", len(r.Incidents))
		}
	default:
		return fmt.Errorf("threat: unknown campaign family %q", r.Family)
	}
	return nil
}

// campaign is the run state; it implements Responder so the engine's
// actions mutate the model it is watching.
type campaign struct {
	cfg  CampaignConfig
	plan attackPlan
	nps  []*npu.NP
	cols []*obs.Collector
	inj  *fault.Injector
	gen  *packet.Generator

	appName string
	bin, gb []byte
	param   uint32

	alive    []bool
	isolated [][]bool
	depth    []int
	capac    []int
	markAt   []int
	origAdm  map[int][2]int
	lockdown bool

	// per-shard cumulative accounting
	arrived, processed, tailDrops, marked, starved []uint64
	alarms, faults                                 []uint64

	// atkAcc is the attacked cores' duty-cycle error-diffusion accumulator.
	atkAcc map[int]float64

	res CampaignResult
}

// Responder implementation: the model mirror of PlaneResponder.

func (c *campaign) TightenAdmission(shard int) error {
	if shard < 0 || shard >= len(c.capac) {
		return fmt.Errorf("threat: no shard %d", shard)
	}
	if _, ok := c.origAdm[shard]; !ok {
		c.origAdm[shard] = [2]int{c.capac[shard], c.markAt[shard]}
	}
	c.capac[shard] = max(1, c.capac[shard]/2)
	c.markAt[shard] = max(1, min(c.markAt[shard]/2, c.capac[shard]))
	return nil
}

func (c *campaign) IsolateCore(shard, core int) error {
	if shard < 0 || shard >= len(c.nps) {
		return fmt.Errorf("threat: no shard %d", shard)
	}
	if err := c.nps[shard].Quarantine(core); err != nil {
		return err
	}
	if !c.isolated[shard][core] {
		c.isolated[shard][core] = true
		c.res.IsolatedCores++
	}
	return nil
}

func (c *campaign) RehashShard(shard int) error {
	if shard < 0 || shard >= len(c.alive) {
		return fmt.Errorf("threat: no shard %d", shard)
	}
	if c.alive[shard] {
		c.alive[shard] = false
		// Shed the queue as starved drops, mirroring the plane's failover.
		c.starved[shard] += uint64(c.depth[shard])
		c.depth[shard] = 0
		c.res.FailedShards++
	}
	return nil
}

func (c *campaign) ZeroizeStaged() error {
	for _, np := range c.nps {
		np.AbortAllStaged()
	}
	c.res.StagedZeroized = true
	return nil
}

func (c *campaign) Lockdown() error {
	c.lockdown = true
	c.res.LockdownFired = true
	return nil
}

func (c *campaign) Relax(to Level) error {
	if to < Critical {
		c.lockdown = false
	}
	if to >= Medium {
		return nil
	}
	for shard, adm := range c.origAdm {
		c.capac[shard], c.markAt[shard] = adm[0], adm[1]
	}
	c.origAdm = map[int][2]int{}
	return nil
}

// activeCores lists a shard's non-isolated cores, ascending.
func (c *campaign) activeCores(shard int) []int {
	var out []int
	for core := 0; core < c.cfg.Cores; core++ {
		if !c.isolated[shard][core] {
			out = append(out, core)
		}
	}
	return out
}

// heal reinstalls the clean bundle on one core.
func (c *campaign) heal(shard, core int) error {
	return c.nps[shard].Install(core, c.appName, c.bin, c.gb, c.param)
}

// attack poisons the core's entry instruction so the next packets trip the
// monitor, re-rolling the poison word if a hash collision made the first
// probe silent. Returns how many of the n attack packets remain to send
// (probes consumed some) — every probe is itself an attack packet.
func (c *campaign) attack(shard, core, n int, counts *coreTally) (int, error) {
	np := c.nps[shard]
	for try := 0; try < 4 && n > 0; try++ {
		cr, err := np.Core(core)
		if err != nil {
			return n, err
		}
		c.inj.Poison(cr, cr.Program().Entry)
		res, err := np.ProcessOn(core, c.gen.Next(), c.depth[shard])
		if err != nil {
			return n, err
		}
		n--
		counts.count(c, shard, res)
		if res.Detected {
			return n, nil
		}
	}
	return n, nil
}

// coreTally is one core's per-tick packet accounting.
type coreTally struct {
	packets, alarms, outliers uint64
}

func (t *coreTally) count(c *campaign, shard int, res npu.Result) {
	t.packets++
	c.processed[shard]++
	if res.Detected {
		t.alarms++
		c.alarms[shard]++
	}
	if res.Faulted {
		c.faults[shard]++
	}
	if float64(res.Cycles) > 2048 {
		t.outliers++
	}
}

// RunCampaign executes one seeded campaign tick by tick and returns its
// full result. Deterministic: same config, same result, byte for byte.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 3
	}
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.App == "" {
		cfg.App = "ipv4cm"
	}
	if cfg.Shards < 1 || cfg.Cores < 1 {
		return nil, fmt.Errorf("threat: campaign needs >= 1 shard and core, got %d/%d", cfg.Shards, cfg.Cores)
	}
	plan, defTicks, err := planFor(cfg.Family, cfg.Shards, cfg.Cores)
	if err != nil {
		return nil, err
	}
	if cfg.Ticks == 0 {
		cfg.Ticks = defTicks
	}
	if cfg.PacketsPerTick == 0 {
		cfg.PacketsPerTick = 30 * cfg.Shards
	}

	// Build the app bundle once; every shard runs the same application.
	app, err := apps.ByName(cfg.App)
	if err != nil {
		return nil, err
	}
	prog, err := app.Program()
	if err != nil {
		return nil, err
	}
	param := uint32(cfg.Seed)*2654435761 + 0x7417
	g, err := monitor.Extract(prog, mhash.NewMerkle(param))
	if err != nil {
		return nil, err
	}

	c := &campaign{
		cfg: cfg, plan: plan,
		inj: fault.New(cfg.Seed), gen: packet.NewGenerator(cfg.Seed),
		appName: cfg.App, bin: prog.Serialize(), gb: g.Serialize(), param: param,
		origAdm: map[int][2]int{}, atkAcc: map[int]float64{},
	}
	c.res = CampaignResult{Family: cfg.Family, Seed: cfg.Seed}
	for l := range c.res.PacketsToLevel {
		c.res.PacketsToLevel[l] = -1
	}
	c.res.PacketsToLevel[None] = 0

	for i := 0; i < cfg.Shards; i++ {
		// The campaign NPs run without the per-core supervisor: the threat
		// engine is the only quarantine authority in this drill, so the
		// trajectory measures its response, not the supervisor's.
		col := obs.New(256)
		np, err := npu.New(npu.Config{
			Cores: cfg.Cores, MonitorsEnabled: true, Obs: col,
		})
		if err != nil {
			return nil, err
		}
		if err := np.InstallAll(cfg.App, c.bin, c.gb, param); err != nil {
			return nil, err
		}
		// Stage an upgrade bundle so the zeroize_staged response has
		// something real to discard.
		if err := np.StageInstallAll(cfg.App, c.bin, c.gb, param); err != nil {
			return nil, err
		}
		c.nps = append(c.nps, np)
		c.cols = append(c.cols, col)
		c.alive = append(c.alive, true)
		c.isolated = append(c.isolated, make([]bool, cfg.Cores))
		c.depth = append(c.depth, 0)
		c.capac = append(c.capac, campQueueCap)
		c.markAt = append(c.markAt, campMarkAt)
	}
	n := cfg.Shards
	c.arrived = make([]uint64, n)
	c.processed = make([]uint64, n)
	c.tailDrops = make([]uint64, n)
	c.marked = make([]uint64, n)
	c.starved = make([]uint64, n)
	c.alarms = make([]uint64, n)
	c.faults = make([]uint64, n)

	ecfg := CampaignEngineConfig()
	ecfg.Responder = c
	ecfg.Forensics = c.cols
	ecfg.StatsFn = c.statsMap
	eng, err := NewEngine(ecfg)
	if err != nil {
		return nil, err
	}

	for t := 0; t < cfg.Ticks; t++ {
		samples, err := c.tick(t)
		if err != nil {
			return nil, err
		}
		tr, err := eng.Tick(Tick(t), samples)
		if err != nil {
			return nil, err
		}
		if tr != nil && tr.To > tr.From {
			for l := tr.From + 1; l <= tr.To; l++ {
				if c.res.PacketsToLevel[l] < 0 {
					c.res.PacketsToLevel[l] = int64(c.totalArrived())
				}
			}
		}
		if lvl := eng.Level(); lvl > c.res.Peak {
			c.res.Peak = lvl
		}
	}

	c.res.Trajectory = eng.Trajectory()
	c.res.Incidents = eng.Incidents()
	c.res.IncidentBytes, err = eng.IncidentBytes()
	if err != nil {
		return nil, err
	}
	c.res.Final = eng.Level()
	c.res.Stats = c.totalStats()
	for _, np := range c.nps {
		for core := 0; core < cfg.Cores; core++ {
			if np.HasStaged(core) {
				c.res.StagedLeft++
			}
		}
	}
	return &c.res, nil
}

func (c *campaign) totalArrived() uint64 {
	var v uint64
	for _, a := range c.arrived {
		v += a
	}
	return v
}

func (c *campaign) totalStats() CampaignStats {
	var s CampaignStats
	for i := range c.arrived {
		s.Arrived += c.arrived[i]
		s.Processed += c.processed[i]
		s.TailDrops += c.tailDrops[i]
		s.Marked += c.marked[i]
		s.Starved += c.starved[i]
		s.Backlog += uint64(c.depth[i])
		s.Alarms += c.alarms[i]
		s.Faults += c.faults[i]
	}
	return s
}

// statsMap feeds the engine's incident stats-delta capture.
func (c *campaign) statsMap() map[string]uint64 {
	s := c.totalStats()
	return map[string]uint64{
		"arrived":    s.Arrived,
		"processed":  s.Processed,
		"tail_drops": s.TailDrops,
		"marked":     s.Marked,
		"starved":    s.Starved,
		"alarms":     s.Alarms,
		"faults":     s.Faults,
	}
}

// tick advances the model one virtual time step: arrivals, admission,
// service (with the family's fault schedule), and sampling.
func (c *campaign) tick(t int) ([]Sample, error) {
	// Distribute arrivals round-robin over the live shards, plus the
	// family's surge at the attacked shard.
	perShard := make([]int, c.cfg.Shards)
	var live []int
	for i, a := range c.alive {
		if a {
			live = append(live, i)
		}
	}
	if len(live) > 0 {
		for i := 0; i < c.cfg.PacketsPerTick; i++ {
			perShard[live[i%len(live)]]++
		}
	}
	if c.alive[c.plan.shard] {
		perShard[c.plan.shard] += c.plan.surge(t)
	}

	duty := c.plan.duty(t)
	attacked := map[int]bool{}
	for _, core := range c.plan.cores {
		attacked[core] = true
	}

	samples := make([]Sample, 0, c.cfg.Shards*(c.cfg.Cores*2+2))
	for s := 0; s < c.cfg.Shards; s++ {
		var arrivedNow, pressureNow uint64
		tokens := campDrainRate
		toProcess := 0

		if !c.alive[s] {
			// A failed shard receives nothing; arrivals were redistributed.
		} else {
			for i := 0; i < perShard[s]; i++ {
				c.arrived[s]++
				arrivedNow++
				// Backpressure measures congestion (marks and tail drops per
				// arrival), matching the live Sampler. Lockdown starvation is
				// deliberately NOT pressure: a response must not feed the
				// detector that fired it, or CRITICAL becomes self-sustaining.
				if c.lockdown {
					c.starved[s]++
					continue
				}
				if tokens > 0 {
					// Service available: the packet goes straight to a core
					// this tick without queueing.
					tokens--
					toProcess++
					continue
				}
				if c.depth[s] >= c.capac[s] {
					c.tailDrops[s]++
					pressureNow++
					continue
				}
				if c.depth[s] >= c.markAt[s] {
					c.marked[s]++
					pressureNow++
				}
				c.depth[s]++
			}
			// Leftover service drains backlog from earlier ticks.
			drain := min(c.depth[s], tokens)
			c.depth[s] -= drain
			toProcess += drain
		}

		// Run this tick's packets. Round-robin over the active cores; on
		// attacked cores the duty share runs against a poisoned entry
		// instruction, the rest clean after a re-install.
		faultsBefore := c.faults[s]
		active := c.activeCores(s)
		tallies := make([]coreTally, c.cfg.Cores)
		if len(active) > 0 && toProcess > 0 {
			quota := make([]int, len(active))
			for i := 0; i < toProcess; i++ {
				quota[i%len(active)]++
			}
			for ai, core := range active {
				q := quota[ai]
				if q == 0 {
					continue
				}
				nAtk := 0
				if s == c.plan.shard && attacked[core] && duty > 0 {
					key := s*c.cfg.Cores + core
					c.atkAcc[key] += duty * float64(q)
					nAtk = int(c.atkAcc[key])
					c.atkAcc[key] -= float64(nAtk)
					nAtk = min(nAtk, q)
				}
				tally := &tallies[core]
				if nAtk > 0 {
					left, err := c.attack(s, core, nAtk, tally)
					if err != nil {
						return nil, err
					}
					for ; left > 0; left-- {
						res, err := c.nps[s].ProcessOn(core, c.gen.Next(), c.depth[s])
						if err != nil {
							return nil, err
						}
						tally.count(c, s, res)
					}
					if err := c.heal(s, core); err != nil {
						return nil, err
					}
				}
				for i := nAtk; i < q; i++ {
					res, err := c.nps[s].ProcessOn(core, c.gen.Next(), c.depth[s])
					if err != nil {
						return nil, err
					}
					tally.count(c, s, res)
				}
			}
		}

		// Emit this shard's samples in the sampler's canonical order.
		for core := 0; core < c.cfg.Cores; core++ {
			tl := tallies[core]
			samples = append(samples,
				Sample{Shard: s, Core: core, Signal: SigAlarmRate,
					Value: rate(tl.alarms, tl.packets)},
				Sample{Shard: s, Core: core, Signal: SigCycleOutlier,
					Value: rate(tl.outliers, tl.packets)},
			)
		}
		var procNow uint64
		for core := range tallies {
			procNow += tallies[core].packets
		}
		samples = append(samples,
			Sample{Shard: s, Core: -1, Signal: SigFaultRate,
				Value: rate(c.faults[s]-faultsBefore, procNow)},
			Sample{Shard: s, Core: -1, Signal: SigBackpressure,
				Value: rate(pressureNow, arrivedNow)},
		)
	}
	return samples, nil
}
