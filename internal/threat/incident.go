package threat

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"sdmmon/internal/obs"
)

// IncidentEvent is one pre-trigger EventRing record inside an incident:
// the obs.Event fields plus the shard whose collector buffered it.
type IncidentEvent struct {
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq"`
	Kind  string `json:"kind"`
	Core  int32  `json:"core"`
	PC    uint32 `json:"pc,omitempty"`
	Aux   uint64 `json:"aux,omitempty"`
}

// IncidentRecord is one forensic capture: the escalation that triggered it,
// every signal reading of the trigger tick, the pre-trigger EventRing
// window, and the stats delta since the previous incident (or since engine
// start). Records contain no wall-clock time and no addresses — only
// virtual time and deterministic counters — so the same seeded campaign
// reproduces the same records byte for byte.
type IncidentRecord struct {
	ID    uint64  `json:"id"`
	Tick  uint64  `json:"tick"`
	From  Level   `json:"from"`
	To    Level   `json:"to"`
	Score float64 `json:"score"`
	Shard int     `json:"shard"`
	Core  int     `json:"core"`
	// Readings carries every signal reading of the trigger tick, in
	// sampling order.
	Readings []SignalReading `json:"readings,omitempty"`
	// Events is the pre-trigger window: the newest buffered ring events of
	// each forensic collector, captured before any response action fired.
	Events []IncidentEvent `json:"events,omitempty"`
	// StatsDelta holds the counters that moved since the last capture
	// (JSON object keys sort, so the encoding is canonical).
	StatsDelta map[string]uint64 `json:"stats_delta,omitempty"`
	// Actions lists the response actions the policy fired for this
	// escalation, in firing order.
	Actions []string `json:"actions,omitempty"`
}

// Marshal renders the record in its canonical byte form (compact JSON;
// struct fields in declaration order, map keys sorted). Marshal∘Unmarshal
// is a fixed point — the fuzz round-trip property.
func (r *IncidentRecord) Marshal() ([]byte, error) {
	return json.Marshal(r)
}

// UnmarshalIncident parses a serialized incident record, rejecting unknown
// fields and trailing garbage loudly.
func UnmarshalIncident(b []byte) (*IncidentRecord, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var r IncidentRecord
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("threat: incident decode: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("threat: incident decode: trailing data")
	}
	return &r, nil
}

// MarshalIncidents renders a set of records as JSON lines — the on-disk
// incident log format npsim writes.
func MarshalIncidents(records []IncidentRecord) ([]byte, error) {
	var buf bytes.Buffer
	for i := range records {
		b, err := records[i].Marshal()
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// WriteIncidents writes the JSON-lines incident log.
func WriteIncidents(w io.Writer, records []IncidentRecord) error {
	b, err := MarshalIncidents(records)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// captureEvents snapshots the newest `window` buffered events of each
// forensic collector (collector index = shard) into incident form, ordered
// by shard then ring sequence. The rings are left untouched — capture must
// never disturb the evidence.
func captureEvents(cols []*obs.Collector, window int) []IncidentEvent {
	var out []IncidentEvent
	for shard, c := range cols {
		if c == nil {
			continue
		}
		evs := c.Events()
		if window > 0 && len(evs) > window {
			evs = evs[len(evs)-window:]
		}
		for _, ev := range evs {
			out = append(out, IncidentEvent{
				Shard: shard, Seq: ev.Seq, Kind: ev.Kind.String(),
				Core: ev.Core, PC: ev.PC, Aux: ev.Aux,
			})
		}
	}
	return out
}
