package monitor

import (
	"fmt"
	"sort"
	"strings"

	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
)

// BasicBlock is a maximal straight-line instruction sequence: control enters
// only at First and leaves only after Last. The paper's offline analysis
// (§2.1) is described at basic-block granularity; the monitoring graph is
// the per-instruction refinement of this CFG.
type BasicBlock struct {
	First, Last uint32   // first and last instruction addresses (inclusive)
	Succ        []uint32 // First addresses of successor blocks
}

// Len returns the number of instructions in the block.
func (b *BasicBlock) Len() int { return int(b.Last-b.First)/4 + 1 }

// CFG is the basic-block control-flow graph of a program.
type CFG struct {
	Entry  uint32
	Blocks []*BasicBlock // sorted by First
}

// Block returns the block starting at addr, or nil.
func (c *CFG) Block(addr uint32) *BasicBlock {
	i := sort.Search(len(c.Blocks), func(i int) bool { return c.Blocks[i].First >= addr })
	if i < len(c.Blocks) && c.Blocks[i].First == addr {
		return c.Blocks[i]
	}
	return nil
}

// BuildCFG partitions the program's code into basic blocks using the same
// successor resolution as Extract.
func BuildCFG(p *asm.Program, g *Graph) (*CFG, error) {
	words := p.CodeWords()
	if len(words) == 0 {
		return nil, fmt.Errorf("monitor: program has no code")
	}
	// Leaders: entry, every successor of a non-sequential node, and every
	// instruction following a control-flow instruction.
	leaders := map[uint32]bool{p.Entry: true}
	for _, cw := range words {
		n := g.Node(cw.Addr)
		if n == nil {
			return nil, fmt.Errorf("monitor: address 0x%x missing from graph", cw.Addr)
		}
		if isa.Classify(cw.W) != isa.KindSeq {
			for _, s := range n.Succ {
				leaders[s] = true
			}
			leaders[cw.Addr+4] = true
		}
	}

	cfg := &CFG{Entry: p.Entry}
	var cur *BasicBlock
	for i, cw := range words {
		if cur == nil || leaders[cw.Addr] || (i > 0 && words[i-1].Addr+4 != cw.Addr) {
			if cur != nil {
				cfg.Blocks = append(cfg.Blocks, cur)
			}
			cur = &BasicBlock{First: cw.Addr, Last: cw.Addr}
		}
		cur.Last = cw.Addr
		if isa.Classify(cw.W) != isa.KindSeq {
			cur.Succ = append([]uint32(nil), g.Node(cw.Addr).Succ...)
			cfg.Blocks = append(cfg.Blocks, cur)
			cur = nil
		}
	}
	if cur != nil {
		// Fell off the end of a code segment: successor is whatever the
		// last node's graph successors are.
		cur.Succ = append([]uint32(nil), g.Node(cur.Last).Succ...)
		cfg.Blocks = append(cfg.Blocks, cur)
	}
	sort.Slice(cfg.Blocks, func(i, j int) bool { return cfg.Blocks[i].First < cfg.Blocks[j].First })

	// Sequential-block successors: a block ending in a KindSeq instruction
	// falls through to the next leader.
	for _, b := range cfg.Blocks {
		if len(b.Succ) == 0 {
			if w, ok := p.WordAt(b.Last); ok && isa.Classify(w) == isa.KindSeq {
				if n := g.Node(b.Last); n != nil {
					b.Succ = append([]uint32(nil), n.Succ...)
				}
			}
		}
	}
	return cfg, nil
}

// Dump renders the CFG with disassembly, for the mongen tool.
func (c *CFG) Dump(p *asm.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "entry: 0x%x, %d basic blocks\n", c.Entry, len(c.Blocks))
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "\nblock 0x%x..0x%x (%d instructions)\n", b.First, b.Last, b.Len())
		for a := b.First; a <= b.Last; a += 4 {
			if w, ok := p.WordAt(a); ok {
				fmt.Fprintf(&sb, "  %06x: %08x  %s\n", a, uint32(w), isa.Disasm(a, w))
			}
		}
		if len(b.Succ) > 0 {
			fmt.Fprintf(&sb, "  -> ")
			for i, s := range b.Succ {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, "0x%x", s)
			}
			sb.WriteString("\n")
		} else {
			sb.WriteString("  -> (terminal)\n")
		}
	}
	return sb.String()
}
