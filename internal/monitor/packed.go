package monitor

import (
	"fmt"
	"sort"
)

// PackedGraph is the hardware memory layout of a monitoring graph: the
// compact, fixed-width representation §2.1/§3.2 motivate ("represented very
// compactly and processed with a single memory access").
//
// Nodes are indexed densely in address order. Every node record is one
// fixed-width word:
//
//	[hash: W bits][kind: 2 bits][field0: idxBits][field1: idxBits]
//
// with kind ∈ {direct, branch, indirect, terminal}. Direct nodes use field0
// as the successor index; branch nodes use both fields; indirect nodes
// (register jumps) use field0 as an offset into a shared fan-out table and
// field1 as the fan-out count; terminal nodes use neither. The fan-out
// table is a dense array of idxBits-wide successor indices.
type PackedGraph struct {
	Width   int // hash width W
	IdxBits int // bits per node index
	Entry   int // entry node index

	addrs         []uint32 // node index -> instruction address
	bits          bitstream
	fanout        bitstream
	nodes         int
	fanoutEntries int
}

// Node record kinds.
const (
	pkDirect = iota
	pkBranch
	pkIndirect
	pkTerminal
)

// Pack lays the graph out in the hardware representation.
func Pack(g *Graph) (*PackedGraph, error) {
	n := g.Len()
	if n == 0 {
		return nil, fmt.Errorf("monitor: empty graph")
	}
	idxBits := bitsFor(n)
	p := &PackedGraph{
		Width:   g.Width,
		IdxBits: idxBits,
		addrs:   append([]uint32(nil), g.Addrs()...),
	}
	index := make(map[uint32]int, n)
	for i, a := range p.addrs {
		index[a] = i
	}
	entry, ok := index[g.Entry]
	if !ok {
		return nil, fmt.Errorf("monitor: entry 0x%x not in graph", g.Entry)
	}
	p.Entry = entry

	recBits := g.Width + 2 + 2*idxBits
	for _, a := range p.addrs {
		node := g.Node(a)
		p.bits.write(uint64(node.Hash), g.Width)
		switch {
		case len(node.Succ) == 0:
			p.bits.write(pkTerminal, 2)
			p.bits.write(0, idxBits)
			p.bits.write(0, idxBits)
		case len(node.Succ) == 1:
			p.bits.write(pkDirect, 2)
			p.bits.write(uint64(index[node.Succ[0]]), idxBits)
			p.bits.write(0, idxBits)
		case len(node.Succ) == 2:
			p.bits.write(pkBranch, 2)
			p.bits.write(uint64(index[node.Succ[0]]), idxBits)
			p.bits.write(uint64(index[node.Succ[1]]), idxBits)
		default:
			if len(node.Succ) > (1<<idxBits)-1 {
				return nil, fmt.Errorf("monitor: fan-out %d exceeds field width", len(node.Succ))
			}
			p.bits.write(pkIndirect, 2)
			p.bits.write(uint64(p.fanoutEntries), idxBits+idxBits)
			for _, s := range node.Succ {
				p.fanout.write(uint64(index[s]), idxBits)
				p.fanoutEntries++
			}
			// The count is packed into the second field by splitting the
			// combined 2*idxBits payload: high half offset, low half count
			// would overflow for big tables, so instead the offset uses
			// both fields and the count is recovered by a sentinel-free
			// length prefix below. Simpler and robust: store the count in
			// a side array of idxBits entries, one per indirect node.
		}
		_ = recBits
	}
	// Second pass for indirect counts (kept as a separate dense array so
	// node records stay single-width).
	for _, a := range p.addrs {
		node := g.Node(a)
		if len(node.Succ) > 2 {
			p.fanout.write(uint64(len(node.Succ)), idxBits)
			p.fanoutEntries++
		}
	}
	p.nodes = n
	return p, nil
}

// Nodes returns the node count.
func (p *PackedGraph) Nodes() int { return p.nodes }

// RecordBits returns the fixed per-node record width.
func (p *PackedGraph) RecordBits() int { return p.Width + 2 + 2*p.IdxBits }

// MemoryBits returns the exact monitor-memory footprint: node records plus
// the shared fan-out table.
func (p *PackedGraph) MemoryBits() int {
	return p.nodes*p.RecordBits() + p.fanout.lengthBits
}

// Unpack reconstructs the Graph from the packed form; used by the device's
// self-check and the round-trip tests. Indirect fan-outs are recovered in
// packing order.
func (p *PackedGraph) Unpack() (*Graph, error) {
	g := &Graph{Width: p.Width, Entry: p.addrs[p.Entry], nodes: map[uint32]*Node{}}
	r := p.bits.reader()
	type pendingIndirect struct {
		node   *Node
		offset int
	}
	var pend []pendingIndirect
	for i := 0; i < p.nodes; i++ {
		h := r.read(p.Width)
		kind := r.read(2)
		f0 := r.read(p.IdxBits)
		f1 := r.read(p.IdxBits)
		n := &Node{Addr: p.addrs[i], Hash: uint8(h)}
		switch kind {
		case pkTerminal:
		case pkDirect:
			n.Succ = []uint32{p.addrs[f0]}
		case pkBranch:
			n.Succ = []uint32{p.addrs[f0], p.addrs[f1]}
		case pkIndirect:
			pend = append(pend, pendingIndirect{node: n, offset: int(f0<<p.IdxBits | f1)})
		}
		g.nodes[n.Addr] = n
		g.order = append(g.order, n.Addr)
	}
	// Fan-out table: entries for each indirect node in packing order,
	// followed by the count array in the same order.
	if len(pend) > 0 {
		fr := p.fanout.reader()
		// First read all entry streams: we need counts, which sit at the
		// tail. Read the tail counts first by position arithmetic.
		totalEntries := p.fanoutEntries - len(pend)
		entries := make([]uint64, totalEntries)
		for i := range entries {
			entries[i] = fr.read(p.IdxBits)
		}
		counts := make([]int, len(pend))
		for i := range counts {
			counts[i] = int(fr.read(p.IdxBits))
		}
		off := 0
		for i, pi := range pend {
			if pi.offset != off {
				return nil, fmt.Errorf("monitor: fan-out offset mismatch (%d != %d)", pi.offset, off)
			}
			for j := 0; j < counts[i]; j++ {
				pi.node.Succ = append(pi.node.Succ, p.addrs[entries[off+j]])
			}
			off += counts[i]
		}
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i] < g.order[j] })
	return g, nil
}

// --- bitstream ---------------------------------------------------------------

type bitstream struct {
	words      []uint64
	lengthBits int
}

func (b *bitstream) write(v uint64, bits int) {
	for i := 0; i < bits; i++ {
		word := b.lengthBits / 64
		off := uint(b.lengthBits % 64)
		if word >= len(b.words) {
			b.words = append(b.words, 0)
		}
		if v&(1<<uint(i)) != 0 {
			b.words[word] |= 1 << off
		}
		b.lengthBits++
	}
}

type bitreader struct {
	b   *bitstream
	pos int
}

func (b *bitstream) reader() *bitreader { return &bitreader{b: b} }

func (r *bitreader) read(bits int) uint64 {
	var v uint64
	for i := 0; i < bits; i++ {
		word := r.pos / 64
		off := uint(r.pos % 64)
		if word < len(r.b.words) && r.b.words[word]&(1<<off) != 0 {
			v |= 1 << uint(i)
		}
		r.pos++
	}
	return v
}
