package monitor

import (
	"math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/cpu"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

func newPackedMonitor(t *testing.T, g *Graph, h mhash.Hasher) *PackedMonitor {
	t.Helper()
	p, err := Pack(g)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewPacked(p, h)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPackedMonitorBenignRun(t *testing.T) {
	p, g, h := buildGraph(t, loopSrc, 0xDEAD)
	m := newPackedMonitor(t, g, h)
	mem := cpu.NewMemory(64 * 1024)
	p.LoadInto(mem)
	c := cpu.New(mem, p.Entry)
	c.Regs[isa.RegSP] = uint32(mem.Size())
	c.Trace = m.Observe
	if _, exc := c.Run(100000); exc != nil {
		t.Fatalf("packed monitor alarmed on valid run: %v (pc %#x)", exc, m.AlarmPC())
	}
	if m.Checked == 0 || m.Alarmed() {
		t.Error("monitor state wrong after clean run")
	}
}

// The semantic core: packed and map-based monitors agree on every
// observation of both valid and hostile streams.
func TestPackedMonitorEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		prog, g, h := buildGraph(t, loopSrc, rng.Uint32())
		ref, err := New(g, h)
		if err != nil {
			t.Fatal(err)
		}
		pm := newPackedMonitor(t, g, h)

		// Build a stream: a valid prefix (real code words along a run)
		// followed by random attacker words.
		var stream []isa.Word
		for _, cw := range prog.CodeWords() {
			stream = append(stream, cw.W)
		}
		for i := 0; i < 32; i++ {
			stream = append(stream, isa.Word(rng.Uint32()))
		}
		for i, w := range stream {
			a := ref.Observe(uint32(4*i), w)
			b := pm.Observe(uint32(4*i), w)
			if a != b {
				t.Fatalf("trial %d: monitors disagree at step %d (ref=%v packed=%v)", trial, i, a, b)
			}
			if ref.Alarmed() != pm.Alarmed() {
				t.Fatalf("trial %d: alarm state diverged at step %d", trial, i)
			}
			if !a {
				break
			}
			if ref.Positions() != pm.Positions() {
				t.Fatalf("trial %d step %d: positions %d vs %d", trial, i, ref.Positions(), pm.Positions())
			}
		}
		// Reset and re-observe the entry.
		ref.Reset()
		pm.Reset()
		if ref.Observe(0, stream[0]) != pm.Observe(0, stream[0]) {
			t.Fatal("post-reset divergence")
		}
	}
}

func TestPackedMonitorEquivalenceOnApps(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, app := range apps.All() {
		prog, err := app.Program()
		if err != nil {
			t.Fatal(err)
		}
		h := mhash.NewMerkle(rng.Uint32())
		g, err := Extract(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := New(g, h)
		if err != nil {
			t.Fatal(err)
		}
		pm := newPackedMonitor(t, g, h)
		for _, cw := range prog.CodeWords() {
			a := ref.Observe(cw.Addr, cw.W)
			b := pm.Observe(cw.Addr, cw.W)
			if a != b {
				t.Fatalf("%s: disagreement at 0x%x", app.Name, cw.Addr)
			}
			if !a {
				break
			}
		}
	}
}

func TestPackedMonitorWidthMismatch(t *testing.T) {
	_, g, _ := buildGraph(t, loopSrc, 1)
	p, err := Pack(g)
	if err != nil {
		t.Fatal(err)
	}
	h8, _ := mhash.NewMerkleWith(1, 8, nil)
	if _, err := NewPacked(p, h8); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestPackedMonitorStaysAlarmed(t *testing.T) {
	prog, g, h := buildGraph(t, loopSrc, 3)
	m := newPackedMonitor(t, g, h)
	words := prog.CodeWords()
	if !m.Observe(0, words[0].W) {
		t.Fatal("entry rejected")
	}
	// Force an alarm with a never-matching stream.
	alarmed := false
	for i := 0; i < 20; i++ {
		if !m.Observe(uint32(i), isa.Word(0xFFFFFFFF)^isa.Word(i)) {
			alarmed = true
			break
		}
	}
	if !alarmed {
		t.Fatal("no alarm on garbage stream")
	}
	if m.Observe(0, words[0].W) {
		t.Error("alarmed monitor accepted input")
	}
	m.Reset()
	if !m.Observe(0, words[0].W) {
		t.Error("reset monitor rejected valid entry")
	}
}
