package monitor

import (
	"math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/cpu"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

func graphsForPacking(t *testing.T) []*Graph {
	t.Helper()
	var out []*Graph
	// The synthetic loop program plus every built-in application, under a
	// couple of parameters each — covers direct, branch, indirect and
	// terminal node kinds.
	rng := rand.New(rand.NewSource(42))
	_, g, _ := buildGraph(t, loopSrc, rng.Uint32())
	out = append(out, g)
	for _, app := range apps.All() {
		prog, err := app.Program()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			h := mhash.NewMerkle(rng.Uint32())
			g, err := Extract(prog, h)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, g)
		}
	}
	return out
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for gi, g := range graphsForPacking(t) {
		p, err := Pack(g)
		if err != nil {
			t.Fatalf("graph %d: Pack: %v", gi, err)
		}
		back, err := p.Unpack()
		if err != nil {
			t.Fatalf("graph %d: Unpack: %v", gi, err)
		}
		if back.Width != g.Width || back.Entry != g.Entry || back.Len() != g.Len() {
			t.Fatalf("graph %d: header mismatch", gi)
		}
		for _, a := range g.Addrs() {
			want, got := g.Node(a), back.Node(a)
			if got == nil {
				t.Fatalf("graph %d: node 0x%x missing", gi, a)
			}
			if got.Hash != want.Hash {
				t.Fatalf("graph %d: hash mismatch at 0x%x", gi, a)
			}
			if len(got.Succ) != len(want.Succ) {
				t.Fatalf("graph %d: succ count mismatch at 0x%x: %v vs %v",
					gi, a, got.Succ, want.Succ)
			}
			for j := range want.Succ {
				if got.Succ[j] != want.Succ[j] {
					t.Fatalf("graph %d: succ mismatch at 0x%x", gi, a)
				}
			}
		}
	}
}

func TestUnpackedGraphDrivesMonitor(t *testing.T) {
	// A monitor driven by the unpacked graph behaves identically on a real
	// execution.
	p, g, h := buildGraph(t, loopSrc, 0x5A5A5A5A)
	packed, err := Pack(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := packed.Unpack()
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(back, h)
	if err != nil {
		t.Fatal(err)
	}
	if exc := runMonitored(t, p, m, 64*1024, nil); exc != nil {
		t.Fatalf("unpacked-graph monitor alarmed on valid run: %v", exc)
	}
}

func TestPackedSizes(t *testing.T) {
	_, g, _ := buildGraph(t, loopSrc, 1)
	p, err := Pack(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != g.Len() {
		t.Errorf("nodes %d != %d", p.Nodes(), g.Len())
	}
	// Record width: W + 2 + 2*idxBits.
	wantRec := g.Width + 2 + 2*bitsFor(g.Len())
	if p.RecordBits() != wantRec {
		t.Errorf("record bits %d, want %d", p.RecordBits(), wantRec)
	}
	if p.MemoryBits() < p.Nodes()*p.RecordBits() {
		t.Error("memory bits below record storage")
	}
	if g.MemoryBits() != p.MemoryBits() {
		t.Errorf("Graph.MemoryBits %d != packed %d", g.MemoryBits(), p.MemoryBits())
	}
	// Compactness (§2.1): a fraction of the 32-bit binary.
	if p.MemoryBits() >= 32*g.Len() {
		t.Errorf("packed graph %d bits not smaller than binary %d bits",
			p.MemoryBits(), 32*g.Len())
	}
}

// multiCallSrc has three call sites of one function, so its jr $ra carries
// three successors — exercising the packed layout's indirect fan-out table.
const multiCallSrc = `
	.text 0x0
main:
	jal leaf
	jal leaf
	jal leaf
	break
leaf:
	addu $v0, $zero, $zero
	jr $ra
`

func TestPackedIndirectFanout(t *testing.T) {
	p, g, h := buildGraph(t, multiCallSrc, 0x1D1)
	// Confirm the premise: some node has more than two successors.
	wide := false
	for _, a := range g.Addrs() {
		if len(g.Node(a).Succ) > 2 {
			wide = true
		}
	}
	if !wide {
		t.Fatal("test premise broken: no indirect fan-out in the graph")
	}
	pk, err := Pack(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := pk.Unpack()
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(p, h); err != nil {
		t.Fatalf("unpacked indirect graph invalid: %v", err)
	}
	// Both monitor implementations accept a real run over the indirect
	// graph.
	m, err := New(back, h)
	if err != nil {
		t.Fatal(err)
	}
	if exc := runMonitored(t, p, m, 64*1024, nil); exc != nil {
		t.Fatalf("map monitor alarmed: %v", exc)
	}
	pm, err := NewPacked(pk, h)
	if err != nil {
		t.Fatal(err)
	}
	mem := cpu.NewMemory(64 * 1024)
	p.LoadInto(mem)
	c := cpu.New(mem, p.Entry)
	c.Regs[isa.RegSP] = uint32(mem.Size())
	c.Trace = pm.Observe
	if _, exc := c.Run(100000); exc != nil {
		t.Fatalf("packed monitor alarmed on indirect graph: %v", exc)
	}
}

func TestPackEmptyGraph(t *testing.T) {
	if _, err := Pack(&Graph{Width: 4, nodes: map[uint32]*Node{}}); err == nil {
		t.Error("empty graph packed")
	}
}

func TestBitstream(t *testing.T) {
	var b bitstream
	vals := []struct {
		v    uint64
		bits int
	}{
		{0x5, 3}, {0x1FF, 9}, {0, 1}, {1, 1}, {0xDEADBEEF, 32}, {0x3FFFFFFFF, 34},
	}
	for _, x := range vals {
		b.write(x.v, x.bits)
	}
	r := b.reader()
	for i, x := range vals {
		if got := r.read(x.bits); got != x.v {
			t.Fatalf("value %d: got %#x, want %#x", i, got, x.v)
		}
	}
	total := 0
	for _, x := range vals {
		total += x.bits
	}
	if b.lengthBits != total {
		t.Errorf("length %d, want %d", b.lengthBits, total)
	}
}
