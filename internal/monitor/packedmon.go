package monitor

import (
	"fmt"

	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

// PackedMonitor is the runtime monitor operating directly on the packed
// hardware layout: candidate positions are dense node indices, records are
// decoded on the fly, and the position set is a pair of flat bitmaps — the
// same structures the RTL monitor holds in block RAM and flops. It is
// semantically identical to Monitor (proved by the equivalence tests) and
// considerably faster, so the NP uses it on the per-instruction path.
type PackedMonitor struct {
	p      *PackedGraph
	hasher mhash.Hasher

	// Decoded record arrays (the "monitor memory" contents).
	hash  []uint8
	kind  []uint8
	f0    []int32
	f1    []int32
	fan   []int32 // fan-out table entries
	fanAt []int32 // per-indirect-node offset into fan
	fanN  []int32 // per-indirect-node count

	cur, next []uint64 // position bitmaps, one bit per node

	alarmed bool
	alarmPC uint32

	Checked      uint64
	Alarms       uint64
	MaxPositions int
}

// NewPacked builds a packed monitor from the hardware layout.
func NewPacked(p *PackedGraph, h mhash.Hasher) (*PackedMonitor, error) {
	if p.Width != h.Width() {
		return nil, fmt.Errorf("monitor: packed width %d != hash unit width %d", p.Width, h.Width())
	}
	n := p.Nodes()
	m := &PackedMonitor{
		p: p, hasher: h,
		hash: make([]uint8, n),
		kind: make([]uint8, n),
		f0:   make([]int32, n),
		f1:   make([]int32, n),
		cur:  make([]uint64, (n+63)/64),
		next: make([]uint64, (n+63)/64),
	}
	// Decode the node records once (hardware reads them per access; the
	// software model trades memory for speed).
	r := p.bits.reader()
	type ind struct{ node, offset int }
	var inds []ind
	for i := 0; i < n; i++ {
		m.hash[i] = uint8(r.read(p.Width))
		m.kind[i] = uint8(r.read(2))
		f0 := r.read(p.IdxBits)
		f1 := r.read(p.IdxBits)
		m.f0[i] = int32(f0)
		m.f1[i] = int32(f1)
		if m.kind[i] == pkIndirect {
			inds = append(inds, ind{node: i, offset: int(f0<<p.IdxBits | f1)})
		}
	}
	m.fanAt = make([]int32, n)
	m.fanN = make([]int32, n)
	if len(inds) > 0 {
		fr := p.fanout.reader()
		total := p.fanoutEntries - len(inds)
		m.fan = make([]int32, total)
		for i := range m.fan {
			m.fan[i] = int32(fr.read(p.IdxBits))
		}
		counts := make([]int32, len(inds))
		for i := range counts {
			counts[i] = int32(fr.read(p.IdxBits))
		}
		off := int32(0)
		for i, x := range inds {
			if int32(x.offset) != off {
				return nil, fmt.Errorf("monitor: packed fan-out offset mismatch")
			}
			m.fanAt[x.node] = off
			m.fanN[x.node] = counts[i]
			off += counts[i]
		}
	}
	m.Reset()
	return m, nil
}

// Reset re-arms the monitor at the entry node.
func (m *PackedMonitor) Reset() {
	for i := range m.cur {
		m.cur[i] = 0
	}
	m.setBit(m.cur, m.p.Entry)
	m.alarmed = false
	if m.MaxPositions == 0 {
		m.MaxPositions = 1
	}
}

func (m *PackedMonitor) setBit(bm []uint64, i int) { bm[i/64] |= 1 << uint(i%64) }

// Alarmed reports whether the alarm line is asserted.
func (m *PackedMonitor) Alarmed() bool { return m.alarmed }

// AlarmPC returns the diagnostic pc captured at alarm time.
func (m *PackedMonitor) AlarmPC() uint32 { return m.alarmPC }

// Observe consumes one retired instruction (cpu.TraceFunc signature).
func (m *PackedMonitor) Observe(pc uint32, w isa.Word) bool {
	if m.alarmed {
		return false
	}
	m.Checked++
	h := m.hasher.Hash(uint32(w))

	for i := range m.next {
		m.next[i] = 0
	}
	matched := false
	positions := 0
	for wi, bits := range m.cur {
		for bits != 0 {
			b := bits & (-bits)
			idx := wi*64 + trailingZeros(b)
			bits &^= b
			if m.hash[idx] != h {
				continue
			}
			matched = true
			switch m.kind[idx] {
			case pkDirect:
				m.setBit(m.next, int(m.f0[idx]))
			case pkBranch:
				m.setBit(m.next, int(m.f0[idx]))
				m.setBit(m.next, int(m.f1[idx]))
			case pkIndirect:
				at, n := m.fanAt[idx], m.fanN[idx]
				for j := at; j < at+n; j++ {
					m.setBit(m.next, int(m.fan[j]))
				}
			case pkTerminal:
				// Matches, contributes no successors.
			}
		}
	}
	if !matched {
		m.alarmed = true
		m.alarmPC = pc
		m.Alarms++
		return false
	}
	m.cur, m.next = m.next, m.cur
	for _, bits := range m.cur {
		positions += popcount64(bits)
	}
	if positions > m.MaxPositions {
		m.MaxPositions = positions
	}
	return true
}

// Positions returns the current candidate count.
func (m *PackedMonitor) Positions() int {
	n := 0
	for _, bits := range m.cur {
		n += popcount64(bits)
	}
	return n
}

func trailingZeros(v uint64) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

func popcount64(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}
