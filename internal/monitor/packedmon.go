package monitor

import (
	"fmt"
	"math/bits"

	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

// PackedMonitor is the runtime monitor operating directly on the packed
// hardware layout. At install time (NewPacked) the node records are
// compiled into dense flat arrays, so the per-instruction step is nothing
// but array reads and bitmask operations — no maps, no branching on node
// kinds, and no heap allocations:
//
//   - match[h] is a bitmap of the nodes whose stored hash is h: ANDing it
//     with the current position bitmap yields the surviving candidates in
//     one word-parallel operation (the hardware's parallel comparators);
//   - succ holds one successor bitmap row per node (direct, branch and
//     indirect fan-outs all compile to the same representation), so
//     advancing is OR-ing the rows of the surviving candidates.
//
// It is semantically identical to Monitor (proved by the equivalence
// tests), and the NP uses it on the per-instruction path. When the hash
// unit is a *mhash.FastHasher the monitor calls it through a concrete
// pointer, keeping interface dispatch out of the inner loop.
type PackedMonitor struct {
	p      *PackedGraph
	hasher mhash.Hasher
	fast   *mhash.FastHasher // non-nil when hasher is a FastHasher

	stride int        // words per bitmap
	match  [][]uint64 // hash value -> bitmap of nodes with that hash
	succ   []uint64   // node index -> successor bitmap row (stride words)

	cur, next []uint64 // position bitmaps, one bit per node

	alarmed bool
	alarmPC uint32

	Checked      uint64
	Alarms       uint64
	MaxPositions int
}

// NewPacked builds a packed monitor from the hardware layout, compiling the
// record stream into the flat transition arrays described above.
func NewPacked(p *PackedGraph, h mhash.Hasher) (*PackedMonitor, error) {
	if p.Width != h.Width() {
		return nil, fmt.Errorf("monitor: packed width %d != hash unit width %d", p.Width, h.Width())
	}
	n := p.Nodes()
	stride := (n + 63) / 64
	m := &PackedMonitor{
		p: p, hasher: h,
		stride: stride,
		match:  make([][]uint64, 1<<p.Width),
		succ:   make([]uint64, n*stride),
		cur:    make([]uint64, stride),
		next:   make([]uint64, stride),
	}
	if fh, ok := h.(*mhash.FastHasher); ok {
		m.fast = fh
	}
	for i := range m.match {
		m.match[i] = make([]uint64, stride)
	}

	// Decode the node records once (hardware reads them per access; the
	// software model trades memory for speed) and compile them.
	r := p.bits.reader()
	type ind struct{ node, offset int }
	var inds []ind
	kind := make([]uint8, n)
	f0 := make([]uint64, n)
	f1 := make([]uint64, n)
	for i := 0; i < n; i++ {
		h := r.read(p.Width)
		kind[i] = uint8(r.read(2))
		f0[i] = r.read(p.IdxBits)
		f1[i] = r.read(p.IdxBits)
		setBit(m.match[h], i)
		if kind[i] == pkIndirect {
			inds = append(inds, ind{node: i, offset: int(f0[i]<<p.IdxBits | f1[i])})
		}
	}
	for i := 0; i < n; i++ {
		row := m.succ[i*stride : (i+1)*stride]
		switch kind[i] {
		case pkDirect:
			setBit(row, int(f0[i]))
		case pkBranch:
			setBit(row, int(f0[i]))
			setBit(row, int(f1[i]))
		case pkTerminal:
			// Matches, contributes no successors: the row stays zero.
		}
	}
	if len(inds) > 0 {
		fr := p.fanout.reader()
		total := p.fanoutEntries - len(inds)
		fan := make([]int32, total)
		for i := range fan {
			fan[i] = int32(fr.read(p.IdxBits))
		}
		counts := make([]int32, len(inds))
		for i := range counts {
			counts[i] = int32(fr.read(p.IdxBits))
		}
		off := int32(0)
		for i, x := range inds {
			if int32(x.offset) != off {
				return nil, fmt.Errorf("monitor: packed fan-out offset mismatch")
			}
			row := m.succ[x.node*stride : (x.node+1)*stride]
			for j := off; j < off+counts[i]; j++ {
				setBit(row, int(fan[j]))
			}
			off += counts[i]
		}
	}
	m.Reset()
	return m, nil
}

// Reset re-arms the monitor at the entry node.
func (m *PackedMonitor) Reset() {
	for i := range m.cur {
		m.cur[i] = 0
	}
	setBit(m.cur, m.p.Entry)
	m.alarmed = false
	if m.MaxPositions == 0 {
		m.MaxPositions = 1
	}
}

func setBit(bm []uint64, i int) { bm[i/64] |= 1 << uint(i%64) }

// Alarmed reports whether the alarm line is asserted.
func (m *PackedMonitor) Alarmed() bool { return m.alarmed }

// AlarmPC returns the diagnostic pc captured at alarm time.
func (m *PackedMonitor) AlarmPC() uint32 { return m.alarmPC }

// Counters returns the monitor's lifetime statistics.
func (m *PackedMonitor) Counters() (checked, alarms uint64, maxPositions int) {
	return m.Checked, m.Alarms, m.MaxPositions
}

// CacheStats reports the instruction-hash cache counters, or zeros when the
// monitor's hash unit is not a FastHasher.
func (m *PackedMonitor) CacheStats() (hits, misses uint64) {
	if m.fast == nil {
		return 0, 0
	}
	return m.fast.Hits, m.fast.Misses
}

// Observe consumes one retired instruction (cpu.TraceFunc signature). The
// steady-state path performs zero heap allocations.
func (m *PackedMonitor) Observe(pc uint32, w isa.Word) bool {
	if m.alarmed {
		return false
	}
	m.Checked++
	var h uint8
	if m.fast != nil {
		h = m.fast.Hash(uint32(w))
	} else {
		h = m.hasher.Hash(uint32(w))
	}

	hb := m.match[h]
	next := m.next
	for i := range next {
		next[i] = 0
	}
	matched := false
	stride := m.stride
	for wi, cw := range m.cur {
		// Word-parallel comparison: candidates whose stored hash equals
		// the reported hash.
		bw := cw & hb[wi]
		if bw == 0 {
			continue
		}
		matched = true
		base := wi * 64
		for bw != 0 {
			idx := base + bits.TrailingZeros64(bw)
			bw &= bw - 1
			row := m.succ[idx*stride : (idx+1)*stride]
			for k, v := range row {
				next[k] |= v
			}
		}
	}
	if !matched {
		m.alarmed = true
		m.alarmPC = pc
		m.Alarms++
		return false
	}
	m.cur, m.next = next, m.cur
	positions := 0
	for _, bw := range m.cur {
		positions += bits.OnesCount64(bw)
	}
	if positions > m.MaxPositions {
		m.MaxPositions = positions
	}
	return true
}

// Positions returns the current candidate count.
func (m *PackedMonitor) Positions() int {
	n := 0
	for _, bw := range m.cur {
		n += bits.OnesCount64(bw)
	}
	return n
}
