package monitor

import (
	"math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/cpu"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

// Property: any prefix of a valid execution trace is accepted — the monitor
// never alarms early on valid code, regardless of where processing stops.
func TestPropertyPrefixClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	prog, g, h := buildGraph(t, loopSrc, rng.Uint32())
	// Record a full valid trace.
	var trace []struct {
		pc uint32
		w  isa.Word
	}
	mem := cpu.NewMemory(64 * 1024)
	prog.LoadInto(mem)
	c := cpu.New(mem, prog.Entry)
	c.Regs[isa.RegSP] = uint32(mem.Size())
	c.Trace = func(pc uint32, w isa.Word) bool {
		trace = append(trace, struct {
			pc uint32
			w  isa.Word
		}{pc, w})
		return true
	}
	if _, exc := c.Run(100000); exc != nil {
		t.Fatal(exc)
	}
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(len(trace))
		m, err := New(g, h)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if !m.Observe(trace[i].pc, trace[i].w) {
				t.Fatalf("prefix of length %d rejected at %d", n, i)
			}
		}
	}
}

// Property: observation is deterministic — two monitors fed the same stream
// agree step by step.
func TestPropertyDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	_, g, h := buildGraph(t, loopSrc, rng.Uint32())
	m1, err := New(g, h)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(g, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		w := isa.Word(rng.Uint32())
		a := m1.Observe(uint32(4*i), w)
		b := m2.Observe(uint32(4*i), w)
		if a != b {
			t.Fatalf("divergence at step %d", i)
		}
		if !a {
			m1.Reset()
			m2.Reset()
		}
	}
}

// Property: the candidate set can only shrink to empty via an alarm — it is
// never empty while the monitor reports acceptance.
func TestPropertyNonEmptyWhileAccepting(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for _, app := range apps.All() {
		prog, err := app.Program()
		if err != nil {
			t.Fatal(err)
		}
		h := mhash.NewMerkle(rng.Uint32())
		g, err := Extract(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(g, h)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			var w isa.Word
			if rng.Intn(2) == 0 {
				cw := prog.CodeWords()
				w = cw[rng.Intn(len(cw))].W
			} else {
				w = isa.Word(rng.Uint32())
			}
			ok := m.Observe(uint32(4*i), w)
			if ok && m.Positions() == 0 {
				// A matched terminal legitimately empties the NEXT set;
				// the following observation must then alarm.
				if m.Observe(0, w) {
					t.Fatalf("%s: accepted with empty candidate set", app.Name)
				}
				m.Reset()
				continue
			}
			if !ok {
				m.Reset()
			}
		}
	}
}

// Property: graph extraction is parameter-stable in structure — the same
// program under different parameters yields identical node addresses and
// successor sets, differing only in hashes.
func TestPropertyGraphStructureParamInvariant(t *testing.T) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Extract(prog, mhash.NewMerkle(0x11111111))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Extract(prog, mhash.NewMerkle(0x22222222))
	if err != nil {
		t.Fatal(err)
	}
	if g1.Len() != g2.Len() || g1.Entry != g2.Entry {
		t.Fatal("structure differs")
	}
	hashDiffs := 0
	for i, a := range g1.Addrs() {
		if g2.Addrs()[i] != a {
			t.Fatal("address sets differ")
		}
		n1, n2 := g1.Node(a), g2.Node(a)
		if len(n1.Succ) != len(n2.Succ) {
			t.Fatalf("successor sets differ at 0x%x", a)
		}
		for j := range n1.Succ {
			if n1.Succ[j] != n2.Succ[j] {
				t.Fatalf("successor %d differs at 0x%x", j, a)
			}
		}
		if n1.Hash != n2.Hash {
			hashDiffs++
		}
	}
	if hashDiffs == 0 {
		t.Error("different parameters produced identical hashes everywhere")
	}
}
