package monitor

import (
	"fmt"
	"sort"

	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

// Block-granularity monitoring, the coarser design point of the related
// work the paper contrasts with (Arora et al. DATE'05, IMPRES DAC'06):
// instead of checking every instruction's hash against a per-instruction
// graph, the monitor accumulates a signature over a basic block and checks
// it once at the block boundary. The block graph is smaller, but an attack
// is detected only when the running block ends — the ablation quantifies
// the latency and memory trade-off against the paper's per-instruction
// scheme.

// BlockGraph is the block-granularity monitoring structure.
type BlockGraph struct {
	Width int
	Entry uint32 // entry block's First address
	// blocks maps a block's First address to its record.
	blocks map[uint32]*BlockNode
	order  []uint32
}

// BlockNode is one monitored basic block.
type BlockNode struct {
	First, Last uint32
	Sig         uint8    // accumulated W-bit signature of the block's instructions
	Succ        []uint32 // First addresses of successor blocks
}

// Len returns the number of blocks.
func (g *BlockGraph) Len() int { return len(g.order) }

// Block returns the node starting at addr.
func (g *BlockGraph) Block(addr uint32) *BlockNode { return g.blocks[addr] }

// blockSig folds per-instruction hashes into a block signature: a rotate-
// and-xor accumulator, cheap in hardware (one W-bit register per core).
func blockSig(h mhash.Hasher, words []isa.Word) uint8 {
	w := h.Width()
	mask := uint8(1<<w - 1)
	var acc uint8
	for _, word := range words {
		acc = ((acc << 1) | (acc >> (uint(w) - 1))) & mask // rotate left 1
		acc ^= h.Hash(uint32(word))
	}
	return acc
}

// ExtractBlocks builds the block-granularity graph from a program.
func ExtractBlocks(p *asm.Program, h mhash.Hasher) (*BlockGraph, error) {
	g, err := Extract(p, h)
	if err != nil {
		return nil, err
	}
	cfg, err := BuildCFG(p, g)
	if err != nil {
		return nil, err
	}
	bg := &BlockGraph{Width: h.Width(), blocks: map[uint32]*BlockNode{}}
	for _, b := range cfg.Blocks {
		var words []isa.Word
		for a := b.First; a <= b.Last; a += 4 {
			w, ok := p.WordAt(a)
			if !ok {
				return nil, fmt.Errorf("monitor: block instruction 0x%x missing", a)
			}
			words = append(words, w)
		}
		node := &BlockNode{First: b.First, Last: b.Last, Sig: blockSig(h, words)}
		// Successor addresses may point mid-block in the instruction
		// graph; resolve to containing blocks.
		for _, s := range b.Succ {
			node.Succ = append(node.Succ, containingBlock(cfg, s))
		}
		node.Succ = dedupSorted(node.Succ)
		bg.blocks[b.First] = node
		bg.order = append(bg.order, b.First)
	}
	sort.Slice(bg.order, func(i, j int) bool { return bg.order[i] < bg.order[j] })
	bg.Entry = containingBlock(cfg, p.Entry)
	return bg, nil
}

func containingBlock(cfg *CFG, addr uint32) uint32 {
	for _, b := range cfg.Blocks {
		if addr >= b.First && addr <= b.Last {
			return b.First
		}
	}
	return addr
}

// MemoryBits returns the hardware footprint: per block, the W-bit signature
// plus two successor indices and a 2-bit kind (same record shape as the
// instruction graph, one record per block instead of per instruction).
func (g *BlockGraph) MemoryBits() int {
	n := len(g.order)
	if n == 0 {
		return 0
	}
	idxBits := bitsFor(n)
	bits := n * (g.Width + 2 + 2*idxBits)
	for _, a := range g.order {
		if s := len(g.blocks[a].Succ); s > 2 {
			bits += s * idxBits
		}
	}
	return bits
}

// blockCand is one NFA candidate: a block plus the progress of the
// signature accumulator inside it (candidates entered at different times
// carry independent accumulators — one W-bit register and a position
// counter per tracked candidate in hardware).
type blockCand struct {
	addr uint32
	acc  uint8
	pos  int
}

// BlockMonitor is the runtime block-granularity checker.
type BlockMonitor struct {
	g      *BlockGraph
	hasher mhash.Hasher

	cur     []blockCand
	alarmed bool

	Checked      uint64
	Alarms       uint64
	MaxPositions int
}

// NewBlock builds the block-granularity monitor.
func NewBlock(g *BlockGraph, h mhash.Hasher) (*BlockMonitor, error) {
	if g.Width != h.Width() {
		return nil, fmt.Errorf("monitor: block graph width %d != hash unit width %d", g.Width, h.Width())
	}
	m := &BlockMonitor{g: g, hasher: h}
	m.Reset()
	return m, nil
}

// Reset re-arms at the entry block.
func (m *BlockMonitor) Reset() {
	m.cur = m.cur[:0]
	m.cur = append(m.cur, blockCand{addr: m.g.Entry})
	m.alarmed = false
	if m.MaxPositions == 0 {
		m.MaxPositions = 1
	}
}

// Alarmed reports the alarm state.
func (m *BlockMonitor) Alarmed() bool { return m.alarmed }

// Positions returns the current candidate count.
func (m *BlockMonitor) Positions() int { return len(m.cur) }

// Observe consumes one retired instruction (cpu.TraceFunc signature). The
// signature check fires only when a candidate reaches its block boundary —
// the source of this design's detection latency.
func (m *BlockMonitor) Observe(pc uint32, w isa.Word) bool {
	if m.alarmed {
		return false
	}
	m.Checked++
	width := uint(m.hasher.Width())
	mask := uint8(1<<width - 1)
	h := m.hasher.Hash(uint32(w))

	var next []blockCand
	seen := map[blockCand]bool{}
	push := func(c blockCand) {
		if !seen[c] {
			seen[c] = true
			next = append(next, c)
		}
	}
	for _, c := range m.cur {
		b := m.g.Block(c.addr)
		if b == nil {
			continue
		}
		acc := ((c.acc << 1) | (c.acc >> (width - 1))) & mask
		acc ^= h
		pos := c.pos + 1
		blen := int(b.Last-b.First)/4 + 1
		switch {
		case pos < blen:
			push(blockCand{addr: c.addr, acc: acc, pos: pos})
		case pos == blen:
			if acc == b.Sig {
				for _, s := range b.Succ {
					push(blockCand{addr: s})
				}
				// A matched terminal block contributes no candidates; any
				// further instruction then alarms, as in the instruction
				// monitor.
			}
		}
	}
	if len(next) == 0 {
		// Distinguish "matched terminal, done" from deviation exactly as
		// the hardware does: a terminal match leaves no expectation, and
		// this instruction WAS the terminal's last — check whether any
		// candidate just matched a terminal block.
		for _, c := range m.cur {
			b := m.g.Block(c.addr)
			if b == nil {
				continue
			}
			blen := int(b.Last-b.First)/4 + 1
			acc := ((c.acc << 1) | (c.acc >> (width - 1))) & mask
			acc ^= h
			if c.pos+1 == blen && acc == b.Sig && len(b.Succ) == 0 {
				m.cur = next
				return true
			}
		}
		m.alarmed = true
		m.Alarms++
		return false
	}
	m.cur = next
	if len(m.cur) > m.MaxPositions {
		m.MaxPositions = len(m.cur)
	}
	return true
}
