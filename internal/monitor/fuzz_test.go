package monitor

import (
	"testing"

	"sdmmon/internal/asm"
	"sdmmon/internal/mhash"
)

func FuzzDeserializeGraph(f *testing.F) {
	p := asm.MustAssemble(loopSrc)
	h := mhash.NewMerkle(0x1234)
	g, err := Extract(p, h)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(g.Serialize())
	f.Add([]byte("SDMG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g2, err := Deserialize(data)
		if err != nil {
			return
		}
		// Anything accepted must serialize, pack and drive a monitor
		// without panicking.
		_ = g2.Serialize()
		if g2.Width == 4 {
			if m, err := New(g2, mhash.NewMerkle(1)); err == nil {
				m.Observe(0, 0)
			}
		}
		if pk, err := Pack(g2); err == nil {
			_, _ = pk.Unpack()
			_ = pk.MemoryBits()
		}
	})
}
