// Package monitor implements the hardware monitor of the paper (§2.1,
// based on Mao & Wolf, IEEE ToC 2010): offline analysis extracts a
// monitoring graph from the processing binary — all possible control-flow
// operations between instructions plus a short hash of every instruction
// word — and a runtime checker compares the hash of each retired
// instruction against the graph, raising a reset alarm on deviation.
//
// The runtime monitor never sees the program counter or instruction word
// itself, only the W-bit hash reported by the parameterizable hash unit;
// control-flow ambiguity (a branch has two valid next operations) is
// handled by tracking a *set* of candidate graph positions, exactly like
// the hardware's parallel comparison.
package monitor

import (
	"fmt"
	"sort"

	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

// Node is one monitoring-graph vertex: an instruction address, the W-bit
// hash of the instruction word stored there, and the addresses execution may
// retire next.
type Node struct {
	Addr uint32
	Hash uint8
	Succ []uint32 // sorted, deduplicated; empty for terminal instructions
}

// Graph is the monitoring graph for one processing binary under one hash
// parameterization. The graph stores hash values, never instruction words:
// that is what keeps it a fraction of the binary's size (§2.1).
type Graph struct {
	Width int    // hash width W in bits
	Entry uint32 // program entry address
	nodes map[uint32]*Node
	order []uint32 // node addresses in ascending order
}

// Node returns the graph node at addr, or nil.
func (g *Graph) Node(addr uint32) *Node { return g.nodes[addr] }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.order) }

// Addrs returns all node addresses in ascending order. The returned slice
// is shared; callers must not modify it.
func (g *Graph) Addrs() []uint32 { return g.order }

// Extract performs the offline analysis of Figure 1: it walks every
// instruction of the program, hashes it with the operator's parameterized
// hash function, and records the valid successor set.
//
// Indirect control flow is resolved conservatively:
//   - "jr $ra" may return to any instruction following a call site;
//   - other register jumps (jalr, computed jr) may enter any known function
//     entry (jal targets and the program entry) or return site.
func Extract(p *asm.Program, h mhash.Hasher) (*Graph, error) {
	words := p.CodeWords()
	if len(words) == 0 {
		return nil, fmt.Errorf("monitor: program has no code")
	}
	inCode := make(map[uint32]bool, len(words))
	for _, cw := range words {
		inCode[cw.Addr] = true
	}
	if !inCode[p.Entry] {
		return nil, fmt.Errorf("monitor: entry 0x%x is not a code address", p.Entry)
	}

	// Pass 1: call-site and call-target discovery for indirect flow.
	var returnSites, callEntries []uint32
	callEntries = append(callEntries, p.Entry)
	for _, cw := range words {
		switch isa.Classify(cw.W) {
		case isa.KindJump:
			if cw.W.Op() == isa.OpJAL {
				if t := isa.JumpTarget(cw.Addr, cw.W); inCode[t] {
					callEntries = append(callEntries, t)
				}
				if inCode[cw.Addr+4] {
					returnSites = append(returnSites, cw.Addr+4)
				}
			}
		case isa.KindJumpReg:
			if cw.W.Fn() == isa.FnJALR {
				if inCode[cw.Addr+4] {
					returnSites = append(returnSites, cw.Addr+4)
				}
			}
		case isa.KindBranch:
			if isa.IsLink(cw.W) { // bltzal/bgezal
				if inCode[cw.Addr+4] {
					returnSites = append(returnSites, cw.Addr+4)
				}
				if t := isa.BranchTarget(cw.Addr, cw.W); inCode[t] {
					callEntries = append(callEntries, t)
				}
			}
		}
	}
	returnSites = dedupSorted(returnSites)
	callEntries = dedupSorted(callEntries)

	g := &Graph{Width: h.Width(), Entry: p.Entry, nodes: make(map[uint32]*Node, len(words))}
	for _, cw := range words {
		n := &Node{Addr: cw.Addr, Hash: h.Hash(uint32(cw.W))}
		next := cw.Addr + 4
		switch isa.Classify(cw.W) {
		case isa.KindSeq:
			if inCode[next] {
				n.Succ = []uint32{next}
			}
		case isa.KindBranch:
			t := isa.BranchTarget(cw.Addr, cw.W)
			if inCode[next] {
				n.Succ = append(n.Succ, next)
			}
			if inCode[t] {
				n.Succ = append(n.Succ, t)
			}
		case isa.KindJump:
			if t := isa.JumpTarget(cw.Addr, cw.W); inCode[t] {
				n.Succ = []uint32{t}
			}
		case isa.KindJumpReg:
			if cw.W.Fn() == isa.FnJR && cw.W.Rs() == isa.RegRA {
				n.Succ = append([]uint32(nil), returnSites...)
			} else {
				n.Succ = append(append([]uint32(nil), callEntries...), returnSites...)
			}
		case isa.KindTrap:
			if cw.W.Fn() == isa.FnSYSCALL && inCode[next] {
				// The core continues after a serviced syscall.
				n.Succ = []uint32{next}
			}
			// break is terminal: no successors.
		}
		n.Succ = dedupSorted(n.Succ)
		g.nodes[cw.Addr] = n
		g.order = append(g.order, cw.Addr)
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i] < g.order[j] })
	return g, nil
}

func dedupSorted(xs []uint32) []uint32 {
	if len(xs) == 0 {
		return nil
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// MemoryBits returns the exact monitor-memory footprint of the graph in
// the hardware layout (see PackedGraph): per node one fixed-width record of
// W + 2 + 2·ceil(log2(N)) bits, plus the shared fan-out table for indirect
// jumps.
func (g *Graph) MemoryBits() int {
	p, err := Pack(g)
	if err != nil {
		return 0
	}
	return p.MemoryBits()
}

func bitsFor(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		return 1
	}
	return b
}

// Serialize encodes the graph deterministically; this is the "monitoring
// graph" component of the signed SDMMon package.
func (g *Graph) Serialize() []byte {
	var out []byte
	put32 := func(v uint32) { out = append(out, byte(v>>24), byte(v>>16), byte(v>>8), byte(v)) }
	out = append(out, 'S', 'D', 'M', 'G')
	out = append(out, byte(g.Width))
	put32(g.Entry)
	put32(uint32(len(g.order)))
	for _, a := range g.order {
		n := g.nodes[a]
		put32(n.Addr)
		out = append(out, n.Hash)
		out = append(out, byte(len(n.Succ)))
		for _, s := range n.Succ {
			put32(s)
		}
	}
	return out
}

// Deserialize decodes a graph produced by Serialize.
func Deserialize(b []byte) (*Graph, error) {
	if len(b) < 13 || b[0] != 'S' || b[1] != 'D' || b[2] != 'M' || b[3] != 'G' {
		return nil, fmt.Errorf("monitor: bad graph magic")
	}
	get32 := func(off int) uint32 {
		return uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
	}
	g := &Graph{Width: int(b[4]), Entry: get32(5), nodes: map[uint32]*Node{}}
	if g.Width < 1 || g.Width > 8 {
		return nil, fmt.Errorf("monitor: bad hash width %d", g.Width)
	}
	count := int(get32(9))
	off := 13
	for i := 0; i < count; i++ {
		if off+6 > len(b) {
			return nil, fmt.Errorf("monitor: truncated node %d", i)
		}
		n := &Node{Addr: get32(off), Hash: b[off+4]}
		ns := int(b[off+5])
		off += 6
		if off+4*ns > len(b) {
			return nil, fmt.Errorf("monitor: truncated successors of node %d", i)
		}
		for j := 0; j < ns; j++ {
			n.Succ = append(n.Succ, get32(off))
			off += 4
		}
		if _, dup := g.nodes[n.Addr]; dup {
			return nil, fmt.Errorf("monitor: duplicate node 0x%x", n.Addr)
		}
		g.nodes[n.Addr] = n
		g.order = append(g.order, n.Addr)
	}
	if off != len(b) {
		return nil, fmt.Errorf("monitor: %d trailing bytes", len(b)-off)
	}
	for i := 1; i < len(g.order); i++ {
		if g.order[i] <= g.order[i-1] {
			return nil, fmt.Errorf("monitor: nodes not in address order")
		}
	}
	if _, ok := g.nodes[g.Entry]; !ok && count > 0 {
		return nil, fmt.Errorf("monitor: entry 0x%x missing from graph", g.Entry)
	}
	// Every successor must reference an existing node: dangling edges would
	// silently shrink the monitor's acceptance set.
	for _, a := range g.order {
		for _, s := range g.nodes[a].Succ {
			if g.nodes[s] == nil {
				return nil, fmt.Errorf("monitor: node 0x%x has dangling successor 0x%x", a, s)
			}
		}
	}
	return g, nil
}

// Validate cross-checks the graph against a program: every code address has
// a node, every node hash matches the parameterized hash of the word found
// there, and all successors are in-graph. Used in tests and by the device's
// optional post-installation self-check.
func (g *Graph) Validate(p *asm.Program, h mhash.Hasher) error {
	if h.Width() != g.Width {
		return fmt.Errorf("monitor: hash width %d != graph width %d", h.Width(), g.Width)
	}
	words := p.CodeWords()
	if len(words) != g.Len() {
		return fmt.Errorf("monitor: %d code words but %d graph nodes", len(words), g.Len())
	}
	for _, cw := range words {
		n := g.nodes[cw.Addr]
		if n == nil {
			return fmt.Errorf("monitor: no node for code address 0x%x", cw.Addr)
		}
		if n.Hash != h.Hash(uint32(cw.W)) {
			return fmt.Errorf("monitor: hash mismatch at 0x%x", cw.Addr)
		}
		for _, s := range n.Succ {
			if g.nodes[s] == nil {
				return fmt.Errorf("monitor: successor 0x%x of 0x%x not in graph", s, cw.Addr)
			}
		}
	}
	return nil
}
