package monitor

import (
	"math/rand"
	"testing"

	"encoding/binary"

	"sdmmon/internal/apps"
	"sdmmon/internal/asm"
	"sdmmon/internal/cpu"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
	"sdmmon/internal/packet"
)

// smashPacket crafts the ipv4cm stack-smash locally (the attack package
// imports monitor, so it cannot be used from in-package tests): 24 option
// bytes whose tail overwrites the saved $ra with the payload address.
func smashPacket(t *testing.T, code []isa.Word) []byte {
	t.Helper()
	opts := make([]byte, 24)
	for i := range opts {
		opts[i] = 0x01
	}
	codeAddr := uint32(apps.PktBase + 20 + len(opts))
	binary.BigEndian.PutUint32(opts[20:], codeAddr)
	payload := make([]byte, 4*len(code))
	for i, w := range code {
		binary.BigEndian.PutUint32(payload[4*i:], uint32(w))
	}
	p := &packet.IPv4{TTL: 17, Proto: packet.ProtoUDP,
		Src: packet.IP(10, 6, 6, 6), Dst: packet.IP(192, 168, 1, 1),
		Options: opts, Payload: payload}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// smashCode is an attacker payload: rewrite the destination IP, report
// forward, stop.
func smashCode() []isa.Word {
	return []isa.Word{
		isa.EncodeI(isa.OpORI, isa.RegZero, isa.RegT0, uint16(apps.PktBase)),
		isa.EncodeI(isa.OpLUI, 0, isa.RegT1, 0x0A42),
		isa.EncodeI(isa.OpORI, isa.RegT1, isa.RegT1, 0x4242),
		isa.EncodeI(isa.OpSW, isa.RegT0, isa.RegT1, 16),
		isa.EncodeI(isa.OpADDIU, isa.RegZero, isa.RegV0, 1),
		isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0),
	}
}

func TestBlockGraphStructure(t *testing.T) {
	p, g, h := buildGraph(t, loopSrc, 0xB10C)
	bg, err := ExtractBlocks(p, h)
	if err != nil {
		t.Fatal(err)
	}
	if bg.Len() == 0 || bg.Len() >= g.Len() {
		t.Fatalf("block graph has %d nodes vs %d instructions", bg.Len(), g.Len())
	}
	if bg.Block(bg.Entry) == nil {
		t.Fatal("entry block missing")
	}
	// The related-work selling point: smaller monitor memory.
	if bg.MemoryBits() >= g.MemoryBits() {
		t.Errorf("block graph %d bits not below instruction graph %d bits",
			bg.MemoryBits(), g.MemoryBits())
	}
	_ = p
}

func TestBlockMonitorAcceptsValidRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 10; trial++ {
		p, _, h := buildGraph(t, loopSrc, rng.Uint32())
		bg, err := ExtractBlocks(p, h)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewBlock(bg, h)
		if err != nil {
			t.Fatal(err)
		}
		mem := cpu.NewMemory(64 * 1024)
		p.LoadInto(mem)
		c := cpu.New(mem, p.Entry)
		c.Regs[isa.RegSP] = uint32(mem.Size())
		c.Trace = m.Observe
		if _, exc := c.Run(100000); exc != nil {
			t.Fatalf("trial %d: block monitor alarmed on valid run: %v", trial, exc)
		}
	}
}

func TestBlockMonitorAcceptsAllApps(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	for _, app := range apps.All() {
		prog, err := app.Program()
		if err != nil {
			t.Fatal(err)
		}
		h := mhash.NewMerkle(rng.Uint32())
		bg, err := ExtractBlocks(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewBlock(bg, h)
		if err != nil {
			t.Fatal(err)
		}
		core := apps.NewCore(prog)
		core.Trace = m.Observe
		gen := benignPacketGen()
		for i := 0; i < 30; i++ {
			m.Reset()
			res := core.Process(gen(), 0)
			if res.Exc != nil {
				t.Fatalf("%s: block monitor alarmed on benign packet %d: %v", app.Name, i, res.Exc)
			}
		}
	}
}

func TestBlockMonitorDetectsSmash(t *testing.T) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(403))
	pkt := smashPacket(t, smashCode())
	detected := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		h := mhash.NewMerkle(rng.Uint32())
		bg, err := ExtractBlocks(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewBlock(bg, h)
		if err != nil {
			t.Fatal(err)
		}
		core := apps.NewCore(prog)
		core.Trace = m.Observe
		res := core.Process(pkt, 0)
		if res.Exc != nil {
			detected++
		}
	}
	if detected < trials-4 {
		t.Errorf("block monitor detected %d/%d attacks", detected, trials)
	}
}

// The ablation's headline: block granularity detects strictly later than
// instruction granularity on the same attack (the deviation is only visible
// at a block boundary).
func TestBlockVsInstructionDetectionLatency(t *testing.T) {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	pkt := smashPacket(t, smashCode())
	rng := rand.New(rand.NewSource(404))
	sumInstr, sumBlock, n := 0, 0, 0
	for trial := 0; trial < 40; trial++ {
		param := rng.Uint32()
		h := mhash.NewMerkle(param)
		g, err := Extract(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := ExtractBlocks(prog, h)
		if err != nil {
			t.Fatal(err)
		}
		li := attackLatency(t, prog, pkt, func() cpuTrace {
			m, err := New(g, h)
			if err != nil {
				t.Fatal(err)
			}
			return m.Observe
		})
		lb := attackLatency(t, prog, pkt, func() cpuTrace {
			m, err := NewBlock(bg, h)
			if err != nil {
				t.Fatal(err)
			}
			return m.Observe
		})
		if li < 0 || lb < 0 {
			continue // escaped under this parameter; rare
		}
		sumInstr += li
		sumBlock += lb
		n++
	}
	if n < 30 {
		t.Fatalf("only %d usable trials", n)
	}
	meanI := float64(sumInstr) / float64(n)
	meanB := float64(sumBlock) / float64(n)
	t.Logf("mean attacker instructions before alarm: instruction-granular %.2f, block-granular %.2f", meanI, meanB)
	if meanB <= meanI {
		t.Errorf("block granularity (%.2f) should detect later than instruction granularity (%.2f)",
			meanB, meanI)
	}
}

type cpuTrace = cpu.TraceFunc

// attackLatency returns the number of attacker instructions retired before
// the alarm, or -1 if the attack escaped.
func attackLatency(t *testing.T, prog *asm.Program, pkt []byte, mk func() cpuTrace) int {
	t.Helper()
	inner := mk()
	core := apps.NewCore(prog)
	inAttack := 0
	codeAddr := uint32(apps.PktBase + 44)
	core.Trace = func(pc uint32, w isa.Word) bool {
		if pc >= codeAddr {
			inAttack++
		}
		return inner(pc, w)
	}
	res := core.Process(pkt, 0)
	if res.Exc == nil {
		return -1
	}
	return inAttack
}

// benignPacketGen yields valid IPv4 packets for app-level block-monitor
// runs.
func benignPacketGen() func() []byte {
	gen := packet.NewGenerator(55)
	gen.OptionWords = 1
	return gen.Next
}
