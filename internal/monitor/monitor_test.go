package monitor

import (
	"math/rand"
	"strings"
	"testing"

	"sdmmon/internal/asm"
	"sdmmon/internal/cpu"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
)

const loopSrc = `
	.text 0x0
main:
	li $t0, 5
loop:
	addiu $t0, $t0, -1
	bgtz $t0, loop
	jal leaf
	break
leaf:
	addu $v0, $zero, $zero
	jr $ra
`

func buildGraph(t *testing.T, src string, param uint32) (*asm.Program, *Graph, mhash.Hasher) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	h := mhash.NewMerkle(param)
	g, err := Extract(p, h)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return p, g, h
}

func TestExtractBasics(t *testing.T) {
	p, g, h := buildGraph(t, loopSrc, 0xA5A5A5A5)
	if g.Len() != len(p.CodeWords()) {
		t.Fatalf("graph has %d nodes, program has %d words", g.Len(), len(p.CodeWords()))
	}
	if err := g.Validate(p, h); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The branch node must have two successors.
	bgtz := g.Node(0x8)
	if bgtz == nil || len(bgtz.Succ) != 2 {
		t.Fatalf("branch node: %+v", bgtz)
	}
	// jal has a single successor: the call target.
	jal := g.Node(0xC)
	if jal == nil || len(jal.Succ) != 1 || jal.Succ[0] != p.Symbols["leaf"] {
		t.Fatalf("jal node: %+v", jal)
	}
	// jr $ra may return to the instruction after any call site.
	jr := g.Node(p.Symbols["leaf"] + 4)
	if jr == nil || len(jr.Succ) != 1 || jr.Succ[0] != 0x10 {
		t.Fatalf("jr node: %+v", jr)
	}
	// break is terminal.
	brk := g.Node(0x10)
	if brk == nil || len(brk.Succ) != 0 {
		t.Fatalf("break node: %+v", brk)
	}
}

func TestExtractErrors(t *testing.T) {
	p := &asm.Program{}
	if _, err := Extract(p, mhash.NewMerkle(0)); err == nil {
		t.Error("empty program accepted")
	}
	q := asm.MustAssemble(".text 0x0\nmain:\nbreak\n")
	q.Entry = 0x1234 // entry outside code
	if _, err := Extract(q, mhash.NewMerkle(0)); err == nil {
		t.Error("bad entry accepted")
	}
}

// runMonitored executes the program with a monitor attached and reports the
// exception (nil on clean halt).
func runMonitored(t *testing.T, p *asm.Program, m *Monitor, memSize int, setup func(*cpu.CPU)) *cpu.Exception {
	t.Helper()
	mem := cpu.NewMemory(memSize)
	p.LoadInto(mem)
	c := cpu.New(mem, p.Entry)
	c.Regs[isa.RegSP] = uint32(mem.Size())
	c.Trace = m.Observe
	if setup != nil {
		setup(c)
	}
	_, exc := c.Run(1_000_000)
	return exc
}

func TestBenignRunNoAlarm(t *testing.T) {
	p, g, h := buildGraph(t, loopSrc, 0xDEADBEEF)
	m, err := New(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if exc := runMonitored(t, p, m, 64*1024, nil); exc != nil {
		t.Fatalf("benign run raised %v (alarm pc %#x)", exc, m.AlarmPC())
	}
	if m.Alarmed() {
		t.Error("monitor alarmed on valid execution")
	}
	if m.Checked == 0 {
		t.Error("monitor observed nothing")
	}
}

func TestBenignRunManyParameters(t *testing.T) {
	// SR2: any parameter must accept the valid execution, because the
	// operator generates the graph with the same parameter the device uses.
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 25; i++ {
		p, g, h := buildGraph(t, loopSrc, rng.Uint32())
		m, err := New(g, h)
		if err != nil {
			t.Fatal(err)
		}
		if exc := runMonitored(t, p, m, 64*1024, nil); exc != nil {
			t.Fatalf("param %d: benign run raised %v", i, exc)
		}
	}
}

func TestWidthMismatchRejected(t *testing.T) {
	_, g, _ := buildGraph(t, loopSrc, 1)
	h8, _ := mhash.NewMerkleWith(1, 8, nil)
	if _, err := New(g, h8); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := NewDFA(g, h8); err == nil {
		t.Error("DFA width mismatch accepted")
	}
}

// Hijacked execution: after the program runs normally for a while, the
// trace suddenly reports instructions that are not in the binary (as after
// a stack smash into packet-derived code). The monitor must alarm within a
// few instructions, with escape probability ~16^-k.
func TestHijackDetected(t *testing.T) {
	_, g, h := buildGraph(t, loopSrc, 0x13572468)
	m, err := New(g, h)
	if err != nil {
		t.Fatal(err)
	}
	// Replay a valid prefix by hand: li, addiu, bgtz.
	p := asm.MustAssemble(loopSrc)
	words := p.CodeWords()
	for i := 0; i < 3; i++ {
		if !m.Observe(words[i].Addr, words[i].W) {
			t.Fatalf("valid prefix rejected at %d", i)
		}
	}
	// Now feed attacker instructions (random words at a bogus address).
	rng := rand.New(rand.NewSource(30))
	detected := false
	for i := 0; i < 16; i++ {
		w := isa.Word(rng.Uint32())
		if !m.Observe(0x8000+uint32(4*i), w) {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("16 random attacker instructions escaped the monitor")
	}
	if !m.Alarmed() {
		t.Error("Alarmed() should be true")
	}
	// Once alarmed, the monitor stays alarmed until reset.
	if m.Observe(0, words[0].W) {
		t.Error("alarmed monitor accepted an instruction")
	}
	m.Reset()
	if m.Alarmed() {
		t.Error("Reset did not clear the alarm")
	}
	if !m.Observe(words[0].Addr, words[0].W) {
		t.Error("monitor rejects valid entry after reset")
	}
}

func TestDetectionLatencyGeometric(t *testing.T) {
	// Measure the probability that a single random attacker instruction is
	// accepted: ≈ (positions)·2^-4. With one position it is 1/16 (§2.1).
	_, g, _ := buildGraph(t, loopSrc, 0)
	rng := rand.New(rand.NewSource(31))
	accepted := 0
	const trials = 30000
	for i := 0; i < trials; i++ {
		hh := mhash.NewMerkle(rng.Uint32())
		gg, err := Extract(asm.MustAssemble(loopSrc), hh)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := New(gg, hh)
		if m.Observe(0x9000, isa.Word(rng.Uint32())) {
			accepted++
		}
	}
	_ = g
	got := float64(accepted) / trials
	if got < 0.03 || got > 0.10 {
		t.Errorf("first-instruction escape rate %.4f, want ≈1/16", got)
	}
}

func TestMonitorIgnoresPC(t *testing.T) {
	// The hardware monitor sees only hashes. Feeding the right instruction
	// words with wrong PCs must behave identically.
	p, g, h := buildGraph(t, loopSrc, 0x777)
	m, _ := New(g, h)
	for i, cw := range p.CodeWords()[:3] {
		if !m.Observe(0xFFFF0000+uint32(i), cw.W) {
			t.Fatal("monitor used the pc for matching")
		}
	}
}

func TestGraphSerializeRoundTrip(t *testing.T) {
	p, g, h := buildGraph(t, loopSrc, 0xBEEF)
	b := g.Serialize()
	g2, err := Deserialize(b)
	if err != nil {
		t.Fatalf("Deserialize: %v", err)
	}
	if g2.Width != g.Width || g2.Entry != g.Entry || g2.Len() != g.Len() {
		t.Fatal("header mismatch")
	}
	if err := g2.Validate(p, h); err != nil {
		t.Fatalf("round-tripped graph invalid: %v", err)
	}
	// The decoded graph drives a monitor identically.
	m, _ := New(g2, h)
	if exc := runMonitored(t, p, m, 64*1024, nil); exc != nil {
		t.Fatalf("round-tripped graph alarmed: %v", exc)
	}
}

func TestDeserializeErrors(t *testing.T) {
	if _, err := Deserialize([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	_, g, _ := buildGraph(t, loopSrc, 1)
	b := g.Serialize()
	if _, err := Deserialize(b[:len(b)-3]); err == nil {
		t.Error("truncated graph accepted")
	}
	if _, err := Deserialize(append(b, 1, 2, 3)); err == nil {
		t.Error("trailing bytes accepted")
	}
	bad := append([]byte(nil), b...)
	bad[4] = 13 // absurd width
	if _, err := Deserialize(bad); err == nil {
		t.Error("bad width accepted")
	}
}

func TestValidateCatchesTampering(t *testing.T) {
	p, g, h := buildGraph(t, loopSrc, 42)
	// Tamper with one node's hash — the AC2 attacker's forged graph.
	addr := g.Addrs()[2]
	g.Node(addr).Hash ^= 0x5
	if err := g.Validate(p, h); err == nil {
		t.Error("tampered hash not caught")
	}
}

func TestMemoryBits(t *testing.T) {
	_, g, _ := buildGraph(t, loopSrc, 7)
	bits := g.MemoryBits()
	if bits <= 0 {
		t.Fatal("no memory bits")
	}
	// Sanity: the graph must be much smaller than the binary it describes
	// (the paper's compactness argument): < 32 bits per instruction.
	if bits >= 32*g.Len() {
		t.Errorf("graph (%d bits) not smaller than binary (%d bits)", bits, 32*g.Len())
	}
}

func TestNFAvsDFA(t *testing.T) {
	// Construct a program in which a branch's two successor instructions
	// hash identically under some parameter; the NFA must follow both,
	// while the DFA can commit to the wrong one and later false-alarm.
	src := `
	.text 0x0
main:
	bgtz $a0, big
	addu $v0, $zero, $zero
	break
big:
	addu $v0, $zero, $zero
	addu $v0, $a0, $a0
	break
`
	p := asm.MustAssemble(src)
	h := mhash.NewMerkle(0x1111)
	g, err := Extract(p, h)
	if err != nil {
		t.Fatal(err)
	}
	// Take the branch (a0 > 0): valid path main->big.
	nfa, _ := New(g, h)
	exc := runMonitored(t, p, nfa, 4096, func(c *cpu.CPU) { c.Regs[isa.RegA0] = 5 })
	if exc != nil {
		t.Fatalf("NFA alarmed on valid path: %v", exc)
	}
	// Both branch successors (addu $v0,$zero,$zero at 0x4 and 0xC) are the
	// same word, so the DFA (which always picks the lower address) follows
	// the fall-through and then sees the hash of "addu $v0,$a0,$a0" where
	// it expects "break": false alarm on a perfectly valid execution.
	dfa, _ := NewDFA(g, h)
	mem := cpu.NewMemory(4096)
	p.LoadInto(mem)
	c := cpu.New(mem, p.Entry)
	c.Regs[isa.RegA0] = 5
	c.Trace = dfa.Observe
	_, dexc := c.Run(10000)
	if dexc == nil || dexc.Kind != cpu.ExcMonitorAlarm {
		t.Fatalf("DFA ablation should false-alarm, got %v", dexc)
	}
	if !dfa.FalseCapable {
		t.Error("DFA never hit a choice point")
	}
}

func TestMaxPositionsTracked(t *testing.T) {
	p, g, h := buildGraph(t, loopSrc, 3)
	m, _ := New(g, h)
	if exc := runMonitored(t, p, m, 64*1024, nil); exc != nil {
		t.Fatal(exc)
	}
	if m.MaxPositions < 1 {
		t.Error("MaxPositions not tracked")
	}
}

func TestBuildCFG(t *testing.T) {
	p, g, _ := buildGraph(t, loopSrc, 5)
	cfg, err := BuildCFG(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Entry != p.Entry {
		t.Errorf("cfg entry %#x", cfg.Entry)
	}
	// Blocks: [main: li], [loop: addiu,bgtz], [jal], [break], [leaf: addu, jr].
	if len(cfg.Blocks) < 4 {
		t.Fatalf("got %d blocks: %+v", len(cfg.Blocks), cfg.Blocks)
	}
	// Every instruction must be covered by exactly one block.
	covered := map[uint32]int{}
	for _, b := range cfg.Blocks {
		for a := b.First; a <= b.Last; a += 4 {
			covered[a]++
		}
	}
	for _, cw := range p.CodeWords() {
		if covered[cw.Addr] != 1 {
			t.Errorf("address %#x covered %d times", cw.Addr, covered[cw.Addr])
		}
	}
	// The loop block must have itself as one successor.
	lb := cfg.Block(p.Symbols["loop"])
	if lb == nil {
		t.Fatal("no block at loop label")
	}
	self := false
	for _, s := range lb.Succ {
		if s == lb.First {
			self = true
		}
	}
	if !self {
		t.Error("loop block has no self edge")
	}
	// Dump produces per-block text.
	d := cfg.Dump(p)
	if !strings.Contains(d, "basic blocks") || !strings.Contains(d, "->") {
		t.Error("Dump output malformed")
	}
}

func TestGraphSmallerThanBinary(t *testing.T) {
	// §2.1: "reduce the size of the monitoring graph to a fraction of the
	// processing binary".
	p, g, _ := buildGraph(t, loopSrc, 9)
	binBits := len(p.Serialize()) * 8
	if g.MemoryBits() >= binBits {
		t.Errorf("graph %d bits >= binary %d bits", g.MemoryBits(), binBits)
	}
}
