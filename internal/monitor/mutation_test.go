package monitor

import (
	"math/rand"
	"testing"
)

// Deserialize faces attacker-reachable input (it runs before signature
// verification in a hostile-download scenario and on device-local storage);
// it must never panic on corrupt bytes, only return errors — and any bytes
// it does accept must produce a usable graph.
func TestDeserializeMutationRobustness(t *testing.T) {
	_, g, h := buildGraph(t, loopSrc, 0x1234)
	good := g.Serialize()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		mut := append([]byte(nil), good...)
		switch rng.Intn(4) {
		case 0: // flip bytes
			for j := 0; j < 1+rng.Intn(4); j++ {
				mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate
			mut = mut[:rng.Intn(len(mut))]
		case 2: // extend
			extra := make([]byte, 1+rng.Intn(16))
			rng.Read(extra)
			mut = append(mut, extra...)
		case 3: // splice random block
			if len(mut) > 8 {
				at := rng.Intn(len(mut) - 4)
				rng.Read(mut[at : at+4])
			}
		}
		g2, err := Deserialize(mut)
		if err != nil {
			continue
		}
		// Accepted mutants must still be self-consistent enough to build
		// a monitor (successors may dangle only if Deserialize allows it —
		// it must not).
		hh := h
		if g2.Width != hh.Width() {
			continue
		}
		if _, err := New(g2, hh); err != nil {
			t.Fatalf("accepted graph unusable: %v", err)
		}
	}
}

func TestPackMutationViaDeserialize(t *testing.T) {
	// Round-trip packing of any graph Deserialize accepts must not panic.
	_, g, _ := buildGraph(t, loopSrc, 99)
	good := g.Serialize()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		mut := append([]byte(nil), good...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		g2, err := Deserialize(mut)
		if err != nil {
			continue
		}
		p, err := Pack(g2)
		if err != nil {
			continue
		}
		if _, err := p.Unpack(); err != nil {
			// Unpack errors are fine; panics are not (covered by reaching
			// this line at all).
			continue
		}
	}
}
