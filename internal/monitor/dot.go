package monitor

import (
	"fmt"
	"strings"

	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
)

// DotCFG renders the basic-block CFG in Graphviz dot format, one record per
// block with its disassembly — the operator's visual check of the offline
// analysis.
func (c *CFG) DotCFG(p *asm.Program) string {
	var sb strings.Builder
	sb.WriteString("digraph cfg {\n  node [shape=box, fontname=\"monospace\", fontsize=9];\n")
	for _, b := range c.Blocks {
		var lines []string
		for a := b.First; a <= b.Last; a += 4 {
			if w, ok := p.WordAt(a); ok {
				lines = append(lines, fmt.Sprintf("%04x: %s", a, escapeDot(isa.Disasm(a, w))))
			}
		}
		shape := ""
		if b.First == c.Entry {
			shape = ", penwidth=2"
		}
		fmt.Fprintf(&sb, "  b%x [label=\"%s\"%s];\n", b.First, strings.Join(lines, "\\l")+"\\l", shape)
	}
	for _, b := range c.Blocks {
		for _, s := range b.Succ {
			target := s
			// An edge to a mid-block address points at the block holding it.
			for _, bb := range c.Blocks {
				if s >= bb.First && s <= bb.Last {
					target = bb.First
					break
				}
			}
			fmt.Fprintf(&sb, "  b%x -> b%x;\n", b.First, target)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DotGraph renders the per-instruction monitoring graph in dot format:
// every node carries its address and hash; branch fan-out and indirect
// return edges are visible. Useful for small programs.
func (g *Graph) DotGraph() string {
	var sb strings.Builder
	sb.WriteString("digraph monitoring {\n  node [shape=circle, fontname=\"monospace\", fontsize=8];\n")
	for _, a := range g.Addrs() {
		n := g.Node(a)
		style := ""
		if a == g.Entry {
			style = ", penwidth=2"
		}
		if len(n.Succ) == 0 {
			style += ", peripheries=2"
		}
		fmt.Fprintf(&sb, "  n%x [label=\"%x\\nh=%x\"%s];\n", a, a, n.Hash, style)
	}
	for _, a := range g.Addrs() {
		for _, s := range g.Node(a).Succ {
			fmt.Fprintf(&sb, "  n%x -> n%x;\n", a, s)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "\"", "\\\"")
	return s
}
