package monitor

import (
	"strings"
	"testing"
)

func TestDotCFG(t *testing.T) {
	p, g, _ := buildGraph(t, loopSrc, 5)
	cfg, err := BuildCFG(p, g)
	if err != nil {
		t.Fatal(err)
	}
	dot := cfg.DotCFG(p)
	for _, want := range []string{"digraph cfg", "->", "addiu", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q", want)
		}
	}
	// Every block appears as a node.
	for _, b := range cfg.Blocks {
		if !strings.Contains(dot, nodeName(b.First)) {
			t.Errorf("block 0x%x missing from dot", b.First)
		}
	}
	// Balanced braces, edges target declared nodes.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
}

func nodeName(a uint32) string {
	return "b" + strings.ToLower(strings.TrimPrefix(hex(a), "0x"))
}

func hex(a uint32) string {
	const digits = "0123456789abcdef"
	if a == 0 {
		return "0x0"
	}
	var out []byte
	for a > 0 {
		out = append([]byte{digits[a&0xF]}, out...)
		a >>= 4
	}
	return "0x" + string(out)
}

func TestDotGraph(t *testing.T) {
	_, g, _ := buildGraph(t, loopSrc, 6)
	dot := g.DotGraph()
	if !strings.Contains(dot, "digraph monitoring") {
		t.Fatal("header missing")
	}
	// One node statement per graph node.
	if got := strings.Count(dot, "[label="); got != g.Len() {
		t.Errorf("%d node statements for %d nodes", got, g.Len())
	}
	// Edge count equals total successor count.
	edges := 0
	for _, a := range g.Addrs() {
		edges += len(g.Node(a).Succ)
	}
	if got := strings.Count(dot, "->"); got != edges {
		t.Errorf("%d edges rendered, want %d", got, edges)
	}
	// Entry is emphasized, terminals double-circled.
	if !strings.Contains(dot, "penwidth=2") || !strings.Contains(dot, "peripheries=2") {
		t.Error("entry/terminal styling missing")
	}
}

func TestEscapeDot(t *testing.T) {
	if escapeDot(`a"b\c`) != `a\"b\\c` {
		t.Errorf("escape = %q", escapeDot(`a"b\c`))
	}
}
