package monitor

import (
	"math/rand"
	"testing"

	"sdmmon/internal/apps"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
	"sdmmon/internal/packet"
)

// The fast path under test: flattened PackedMonitor fed by a FastHasher
// (word-keyed hash cache, concrete dispatch). The reference: map-based
// Monitor fed by the uncached Merkle hasher. This file proves equivalence
// on benign traffic; the attack-side equivalence (E8 stack smash,
// packet-derived code) lives in internal/attack/fastpath_test.go because
// package attack imports monitor.

func fastAndRefMonitors(t *testing.T, app *apps.App, param uint32) (*PackedMonitor, *Monitor, *apps.Core, *apps.Core) {
	t.Helper()
	prog, err := app.Program()
	if err != nil {
		t.Fatal(err)
	}
	ref := mhash.NewMerkle(param)
	g, err := Extract(prog, ref)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Pack(g)
	if err != nil {
		t.Fatal(err)
	}
	fastMon, err := NewPacked(p, mhash.NewFastDefault(mhash.NewMerkle(param)))
	if err != nil {
		t.Fatal(err)
	}
	refMon, err := New(g, ref)
	if err != nil {
		t.Fatal(err)
	}
	fastCore, refCore := apps.NewCore(prog), apps.NewCore(prog)
	fastCore.Trace = fastMon.Observe
	refCore.Trace = refMon.Observe
	return fastMon, refMon, fastCore, refCore
}

// TestFastPathEquivalenceBenign runs identical benign traffic through the
// fast path and the reference on every built-in application and demands
// identical outcomes, instruction counts and candidate-set behaviour.
func TestFastPathEquivalenceBenign(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, app := range apps.All() {
		fastMon, refMon, fastCore, refCore := fastAndRefMonitors(t, app, rng.Uint32())
		gen := packet.NewGenerator(int64(rng.Int31()))
		gen.OptionWords = 2
		for i := 0; i < 50; i++ {
			pkt := gen.Next()
			fastMon.Reset()
			refMon.Reset()
			fr := fastCore.Process(pkt, i%64)
			rr := refCore.Process(pkt, i%64)
			if (fr.Exc == nil) != (rr.Exc == nil) || fastMon.Alarmed() != refMon.Alarmed() {
				t.Fatalf("%s pkt %d: fast exc=%v alarm=%v, ref exc=%v alarm=%v",
					app.Name, i, fr.Exc, fastMon.Alarmed(), rr.Exc, refMon.Alarmed())
			}
			if fr.Verdict != rr.Verdict {
				t.Fatalf("%s pkt %d: verdicts %d vs %d", app.Name, i, fr.Verdict, rr.Verdict)
			}
		}
		fc, fa, fp := fastMon.Counters()
		rc, ra, rp := refMon.Counters()
		if fc != rc || fa != ra || fp != rp {
			t.Fatalf("%s: counters fast=(%d,%d,%d) ref=(%d,%d,%d)", app.Name, fc, fa, fp, rc, ra, rp)
		}
		if fc == 0 {
			t.Fatalf("%s: no instructions observed", app.Name)
		}
	}
}

// TestFastPathEquivalenceRandomStreams drives both monitors over raw
// instruction streams (valid prefix, then attacker garbage) across random
// parameters, comparing every single decision.
func TestFastPathEquivalenceRandomStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 12; trial++ {
		param := rng.Uint32()
		ref := mhash.NewMerkle(param)
		g, err := Extract(prog, ref)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Pack(g)
		if err != nil {
			t.Fatal(err)
		}
		fastMon, err := NewPacked(p, mhash.NewFastDefault(mhash.NewMerkle(param)))
		if err != nil {
			t.Fatal(err)
		}
		refMon, err := New(g, ref)
		if err != nil {
			t.Fatal(err)
		}
		words := prog.CodeWords()
		for i := 0; i < 2000; i++ {
			var w uint32
			if rng.Intn(4) > 0 {
				w = uint32(words[rng.Intn(len(words))].W)
			} else {
				w = rng.Uint32()
			}
			a := refMon.Observe(uint32(4*i), isa.Word(w))
			b := fastMon.Observe(uint32(4*i), isa.Word(w))
			if a != b || refMon.Alarmed() != fastMon.Alarmed() {
				t.Fatalf("trial %d step %d: ref=%v fast=%v", trial, i, a, b)
			}
			if !a {
				refMon.Reset()
				fastMon.Reset()
				continue
			}
			if refMon.Positions() != fastMon.Positions() {
				t.Fatalf("trial %d step %d: positions %d vs %d",
					trial, i, refMon.Positions(), fastMon.Positions())
			}
		}
	}
}
