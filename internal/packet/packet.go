// Package packet provides the IPv4/UDP packet representation, parsing and
// construction used by the data plane: traffic generators build packets,
// the network processor cores parse and rewrite them in simulated memory,
// and the attack models craft malformed ones (§1: attacks "launched through
// the data plane by simply sending malformed data packets").
//
// The NP cores process packets at layer 3 (the dispatcher strips layer 2),
// so the wire format here starts at the IPv4 header.
package packet

import (
	"encoding/binary"
	"fmt"
)

// Protocol numbers used by the applications.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// MaxLen is the largest packet the NP accepts (Ethernet MTU class).
const MaxLen = 1536

// IPv4 is a parsed IPv4 header plus payload.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Proto    uint8
	Src, Dst [4]byte
	Options  []byte // 0–40 bytes, multiple of 4
	Payload  []byte
}

// HeaderLen returns the header length in bytes (20 + options).
func (p *IPv4) HeaderLen() int { return 20 + len(p.Options) }

// TotalLen returns the datagram length in bytes.
func (p *IPv4) TotalLen() int { return p.HeaderLen() + len(p.Payload) }

// Marshal serializes the packet with a correct header checksum.
func (p *IPv4) Marshal() ([]byte, error) {
	if len(p.Options) > 40 || len(p.Options)%4 != 0 {
		return nil, fmt.Errorf("packet: options length %d invalid", len(p.Options))
	}
	if p.TotalLen() > MaxLen {
		return nil, fmt.Errorf("packet: total length %d exceeds %d", p.TotalLen(), MaxLen)
	}
	ihl := 5 + len(p.Options)/4
	b := make([]byte, p.TotalLen())
	b[0] = 4<<4 | uint8(ihl)
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(p.TotalLen()))
	binary.BigEndian.PutUint16(b[4:], p.ID)
	binary.BigEndian.PutUint16(b[6:], uint16(p.Flags)<<13|p.FragOff&0x1FFF)
	b[8] = p.TTL
	b[9] = p.Proto
	copy(b[12:16], p.Src[:])
	copy(b[16:20], p.Dst[:])
	copy(b[20:], p.Options)
	copy(b[20+len(p.Options):], p.Payload)
	cs := Checksum(b[:20+len(p.Options)])
	binary.BigEndian.PutUint16(b[10:], cs)
	return b, nil
}

// ParseIPv4 parses a wire-format packet. It accepts packets with incorrect
// checksums (flagged via ChecksumOK) because the data plane must be able to
// inspect malformed traffic.
func ParseIPv4(b []byte) (*IPv4, error) {
	if len(b) < 20 {
		return nil, fmt.Errorf("packet: %d bytes too short for IPv4", len(b))
	}
	if v := b[0] >> 4; v != 4 {
		return nil, fmt.Errorf("packet: version %d", v)
	}
	ihl := int(b[0]&0xF) * 4
	if ihl < 20 || ihl > len(b) {
		return nil, fmt.Errorf("packet: header length %d invalid for %d bytes", ihl, len(b))
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total < ihl || total > len(b) {
		return nil, fmt.Errorf("packet: total length %d invalid", total)
	}
	p := &IPv4{
		TOS:     b[1],
		ID:      binary.BigEndian.Uint16(b[4:]),
		Flags:   uint8(binary.BigEndian.Uint16(b[6:]) >> 13),
		FragOff: binary.BigEndian.Uint16(b[6:]) & 0x1FFF,
		TTL:     b[8],
		Proto:   b[9],
	}
	copy(p.Src[:], b[12:16])
	copy(p.Dst[:], b[16:20])
	p.Options = append([]byte(nil), b[20:ihl]...)
	p.Payload = append([]byte(nil), b[ihl:total]...)
	return p, nil
}

// Checksum computes the IPv4 header checksum over hdr (checksum field
// treated as zero).
func Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 { // checksum field itself
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// ChecksumOK verifies the header checksum of a wire-format packet.
func ChecksumOK(b []byte) bool {
	if len(b) < 20 {
		return false
	}
	ihl := int(b[0]&0xF) * 4
	if ihl < 20 || ihl > len(b) {
		return false
	}
	return Checksum(b[:ihl]) == binary.BigEndian.Uint16(b[10:])
}

// UDP is a UDP header plus payload, carried in IPv4.Payload.
type UDP struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// Marshal serializes the UDP datagram (checksum zero: optional in IPv4).
func (u *UDP) Marshal() []byte {
	b := make([]byte, 8+len(u.Payload))
	binary.BigEndian.PutUint16(b[0:], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:], u.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(8+len(u.Payload)))
	copy(b[8:], u.Payload)
	return b
}

// ParseUDP parses a UDP datagram.
func ParseUDP(b []byte) (*UDP, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("packet: %d bytes too short for UDP", len(b))
	}
	l := int(binary.BigEndian.Uint16(b[4:]))
	if l < 8 || l > len(b) {
		return nil, fmt.Errorf("packet: UDP length %d invalid", l)
	}
	return &UDP{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Payload: append([]byte(nil), b[8:l]...),
	}, nil
}

// Addr formats a 4-byte address.
func Addr(a [4]byte) string { return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3]) }

// IP builds a 4-byte address.
func IP(a, b, c, d byte) [4]byte { return [4]byte{a, b, c, d} }
