package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func samplePacket() *IPv4 {
	return &IPv4{
		TOS:     0x20,
		ID:      0x1234,
		Flags:   2,
		FragOff: 0,
		TTL:     64,
		Proto:   ProtoUDP,
		Src:     IP(10, 1, 2, 3),
		Dst:     IP(192, 168, 0, 9),
		Options: []byte{0x44, 0, 0, 0},
		Payload: []byte("hello world"),
	}
}

func TestMarshalParseRoundTrip(t *testing.T) {
	p := samplePacket()
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !ChecksumOK(b) {
		t.Error("marshal produced bad checksum")
	}
	q, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.TOS != p.TOS || q.ID != p.ID || q.Flags != p.Flags || q.TTL != p.TTL ||
		q.Proto != p.Proto || q.Src != p.Src || q.Dst != p.Dst {
		t.Errorf("fields mismatch: %+v vs %+v", q, p)
	}
	if !bytes.Equal(q.Options, p.Options) || !bytes.Equal(q.Payload, p.Payload) {
		t.Error("options/payload mismatch")
	}
}

func TestMarshalValidation(t *testing.T) {
	p := samplePacket()
	p.Options = make([]byte, 44) // > 40
	if _, err := p.Marshal(); err == nil {
		t.Error("oversized options accepted")
	}
	p = samplePacket()
	p.Options = make([]byte, 3) // not multiple of 4
	if _, err := p.Marshal(); err == nil {
		t.Error("unaligned options accepted")
	}
	p = samplePacket()
	p.Payload = make([]byte, MaxLen)
	if _, err := p.Marshal(); err == nil {
		t.Error("oversized packet accepted")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseIPv4(make([]byte, 10)); err == nil {
		t.Error("short packet accepted")
	}
	b, _ := samplePacket().Marshal()
	b6 := append([]byte(nil), b...)
	b6[0] = 0x65
	if _, err := ParseIPv4(b6); err == nil {
		t.Error("IPv6 version accepted")
	}
	bad := append([]byte(nil), b...)
	bad[0] = 0x4F // ihl=60 > packet
	bad = bad[:24]
	if _, err := ParseIPv4(bad); err == nil {
		t.Error("ihl beyond packet accepted")
	}
	badTotal := append([]byte(nil), b...)
	badTotal[2], badTotal[3] = 0xFF, 0xFF
	if _, err := ParseIPv4(badTotal); err == nil {
		t.Error("total length beyond packet accepted")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	b, _ := samplePacket().Marshal()
	b[8]-- // TTL change without checksum update
	if ChecksumOK(b) {
		t.Error("corrupted header passed checksum")
	}
	if ChecksumOK([]byte{1}) {
		t.Error("tiny buffer passed checksum")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDP{SrcPort: 5353, DstPort: 53, Payload: []byte("dns?")}
	b := u.Marshal()
	v, err := ParseUDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.SrcPort != u.SrcPort || v.DstPort != u.DstPort || !bytes.Equal(v.Payload, u.Payload) {
		t.Error("udp mismatch")
	}
	if _, err := ParseUDP([]byte{1, 2}); err == nil {
		t.Error("short UDP accepted")
	}
	short := u.Marshal()
	short[4], short[5] = 0, 2 // length < 8
	if _, err := ParseUDP(short); err == nil {
		t.Error("bad UDP length accepted")
	}
}

func TestGeneratorProducesValidTraffic(t *testing.T) {
	g := NewGenerator(42)
	g.OptionWords = 2
	for i := 0; i < 200; i++ {
		b := g.Next()
		if !ChecksumOK(b) {
			t.Fatalf("packet %d: bad checksum", i)
		}
		p, err := ParseIPv4(b)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if p.TTL == 0 {
			t.Fatalf("packet %d: zero TTL", i)
		}
		if len(p.Options) != 8 {
			t.Fatalf("packet %d: %d option bytes", i, len(p.Options))
		}
		if p.Proto == ProtoUDP {
			if _, err := ParseUDP(p.Payload); err != nil {
				t.Fatalf("packet %d: bad UDP: %v", i, err)
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 20; i++ {
		if !bytes.Equal(a.Next(), b.Next()) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestAddrFormatting(t *testing.T) {
	if got := Addr(IP(1, 2, 3, 4)); got != "1.2.3.4" {
		t.Errorf("Addr = %q", got)
	}
}

// Property: marshal → parse → marshal is a fixed point.
func TestQuickRoundTripStable(t *testing.T) {
	f := func(tos, ttl, proto uint8, id uint16, payloadLen uint8) bool {
		p := &IPv4{TOS: tos, ID: id, TTL: ttl, Proto: proto,
			Src: IP(1, 2, 3, 4), Dst: IP(5, 6, 7, 8),
			Payload: make([]byte, int(payloadLen))}
		b1, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := ParseIPv4(b1)
		if err != nil {
			return false
		}
		b2, err := q.Marshal()
		if err != nil {
			return false
		}
		return bytes.Equal(b1, b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
