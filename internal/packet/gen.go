package packet

import "math/rand"

// Generator produces pseudo-random benign traffic for throughput and
// detection-latency experiments.
type Generator struct {
	rng *rand.Rand
	// OptionWords, when > 0, gives each packet that many 4-byte option
	// words (benign options, exercising the same code path the attack
	// abuses).
	OptionWords int
	// UDPShare in [0,1] selects the fraction of UDP packets; the rest are
	// TCP-marked fillers.
	UDPShare float64
	// PayloadLen bounds the payload size.
	MinPayload, MaxPayload int
}

// NewGenerator creates a generator with the given seed and sane defaults.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:        rand.New(rand.NewSource(seed)),
		UDPShare:   0.5,
		MinPayload: 16,
		MaxPayload: 256,
	}
}

// Next produces one benign packet in wire format.
func (g *Generator) Next() []byte {
	payloadLen := g.MinPayload
	if g.MaxPayload > g.MinPayload {
		payloadLen += g.rng.Intn(g.MaxPayload - g.MinPayload)
	}
	proto := uint8(ProtoTCP)
	payload := make([]byte, payloadLen)
	g.rng.Read(payload)
	if g.rng.Float64() < g.UDPShare {
		proto = ProtoUDP
		u := &UDP{
			SrcPort: uint16(1024 + g.rng.Intn(60000)),
			DstPort: uint16(1 + g.rng.Intn(1024)),
			Payload: payload,
		}
		payload = u.Marshal()
	}
	var opts []byte
	if g.OptionWords > 0 {
		opts = make([]byte, 4*g.OptionWords)
		g.rng.Read(opts)
		opts[0] = 0x44 // timestamp-ish option type, content irrelevant
	}
	p := &IPv4{
		TOS:     uint8(g.rng.Intn(256)) &^ 0x3, // ECN bits clear
		ID:      uint16(g.rng.Intn(65536)),
		TTL:     uint8(2 + g.rng.Intn(62)),
		Proto:   proto,
		Src:     IP(10, byte(g.rng.Intn(256)), byte(g.rng.Intn(256)), byte(1+g.rng.Intn(254))),
		Dst:     IP(192, 168, byte(g.rng.Intn(256)), byte(1+g.rng.Intn(254))),
		Options: opts,
		Payload: payload,
	}
	b, err := p.Marshal()
	if err != nil {
		// The generator only produces in-range sizes; a failure is a bug.
		panic(err)
	}
	return b
}
