package techmap

import (
	"fmt"
	"math/rand"

	"sdmmon/internal/netlist"
)

// LUT is one mapped lookup table: a root gate, its cut leaves, and the
// truth table of the root as a function of the leaves (bit i of Truth is
// the output for leaf assignment i, leaf 0 = LSB).
type LUT struct {
	Root   netlist.Signal
	Leaves []netlist.Signal
	Truth  []uint64 // packed bitset of 2^len(Leaves) bits
}

// Lookup evaluates the LUT for a leaf assignment.
func (l *LUT) Lookup(assign uint32) bool {
	return l.Truth[assign/64]&(1<<(assign%64)) != 0
}

// Mapped is the post-mapping network: the chosen LUTs plus the carry-chain
// adders that bypass generic covering.
type Mapped struct {
	Circuit *netlist.Circuit
	LUTs    []LUT
	Result  *Result
}

// MapNetwork runs the mapper and additionally extracts the mapped LUT
// network with computed truth tables, enabling post-mapping verification.
func MapNetwork(c *netlist.Circuit, opt Options) (*Mapped, error) {
	opt = opt.withDefaults()
	if opt.K < 2 || opt.K > 8 {
		return nil, fmt.Errorf("techmap: K=%d out of range 2..8", opt.K)
	}
	// Re-run the mapper to get internal state. Map() recomputes the same
	// deterministic choices.
	res, m, err := mapInternal(c, opt)
	if err != nil {
		return nil, err
	}
	needed := m.coveredRoots()
	out := &Mapped{Circuit: c, Result: res}
	for _, root := range needed {
		leaves := m.best[root]
		truth, err := m.truthOf(root, leaves)
		if err != nil {
			return nil, err
		}
		out.LUTs = append(out.LUTs, LUT{
			Root:   root,
			Leaves: append([]netlist.Signal(nil), leaves...),
			Truth:  truth,
		})
	}
	return out, nil
}

// coveredRoots returns the mapped roots in deterministic topological order.
func (m *mapper) coveredRoots() []netlist.Signal {
	needed := map[netlist.Signal]bool{}
	var require func(netlist.Signal)
	require = func(s netlist.Signal) {
		if m.isLeaf[s] || m.isConst[s] || needed[s] {
			return
		}
		if m.chainGate[s] && !m.chainOut[s] {
			return
		}
		needed[s] = true
		for _, leaf := range m.best[s] {
			require(leaf)
		}
	}
	for _, out := range m.c.Outputs {
		require(out)
	}
	for _, g := range m.c.Gates {
		if g.Kind == netlist.KDFF {
			require(g.In[0])
		}
	}
	var order []netlist.Signal
	for i := range m.c.Gates {
		if needed[netlist.Signal(i)] {
			order = append(order, netlist.Signal(i))
		}
	}
	return order
}

// truthOf computes the root's function of its cut leaves by exhaustive cone
// evaluation (≤ 2^K assignments).
func (m *mapper) truthOf(root netlist.Signal, leaves cut) ([]uint64, error) {
	n := len(leaves)
	size := 1 << uint(n)
	truth := make([]uint64, (size+63)/64)
	val := map[netlist.Signal]bool{}
	var eval func(netlist.Signal) (bool, error)
	eval = func(s netlist.Signal) (bool, error) {
		if v, ok := val[s]; ok {
			return v, nil
		}
		g := m.c.Gates[s]
		var v bool
		var err error
		switch g.Kind {
		case netlist.KConst0:
			v = false
		case netlist.KConst1:
			v = true
		case netlist.KInput, netlist.KDFF:
			return false, fmt.Errorf("techmap: cone of gate %d escapes cut through %d", root, s)
		case netlist.KNot:
			v, err = eval(g.In[0])
			v = !v
		case netlist.KAnd:
			a, e1 := eval(g.In[0])
			b, e2 := eval(g.In[1])
			v, err = a && b, firstErr(e1, e2)
		case netlist.KOr:
			a, e1 := eval(g.In[0])
			b, e2 := eval(g.In[1])
			v, err = a || b, firstErr(e1, e2)
		case netlist.KXor:
			a, e1 := eval(g.In[0])
			b, e2 := eval(g.In[1])
			v, err = a != b, firstErr(e1, e2)
		case netlist.KMux:
			sel, e1 := eval(g.In[0])
			var x bool
			var e2 error
			if sel {
				x, e2 = eval(g.In[2])
			} else {
				x, e2 = eval(g.In[1])
			}
			v, err = x, firstErr(e1, e2)
		default:
			return false, fmt.Errorf("techmap: unexpected gate kind %v in cone", g.Kind)
		}
		if err != nil {
			return false, err
		}
		val[s] = v
		return v, nil
	}
	for a := 0; a < size; a++ {
		clear(val)
		for i, leaf := range leaves {
			val[leaf] = a&(1<<uint(i)) != 0
		}
		v, err := eval(root)
		if err != nil {
			return nil, err
		}
		if v {
			truth[a/64] |= 1 << uint(a%64)
		}
	}
	return truth, nil
}

func firstErr(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// VerifyMapping checks the mapped network against the original gate-level
// circuit on random input vectors: for every LUT, the truth-table lookup on
// the simulated leaf values must equal the simulated root value, and every
// primary output / DFF input must be a mapped root, a leaf-level signal, or
// a constant. This is the post-synthesis equivalence gate of the flow.
func VerifyMapping(c *netlist.Circuit, m *Mapped, vectors int, seed int64) error {
	sim, err := netlist.NewSimulator(c)
	if err != nil {
		return err
	}
	// Coverage check.
	mappedRoot := map[netlist.Signal]bool{}
	for _, l := range m.LUTs {
		mappedRoot[l.Root] = true
	}
	isDrivable := func(s netlist.Signal) bool {
		switch c.Gates[s].Kind {
		case netlist.KInput, netlist.KDFF, netlist.KConst0, netlist.KConst1:
			return true
		}
		if mappedRoot[s] {
			return true
		}
		// Carry-chain outputs are produced by dedicated arithmetic cells.
		for _, fa := range c.Adders {
			if s == fa.Sum || s == fa.Cout {
				return true
			}
		}
		return false
	}
	for _, out := range c.Outputs {
		if !isDrivable(out) {
			return fmt.Errorf("techmap: output gate %d not driven by the mapped network", out)
		}
	}
	for i, g := range c.Gates {
		if g.Kind == netlist.KDFF && !isDrivable(g.In[0]) {
			return fmt.Errorf("techmap: DFF %d input not driven by the mapped network", i)
		}
	}

	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < vectors; v++ {
		for _, in := range c.Inputs {
			sim.SetInput(in, rng.Intn(2) == 1)
		}
		sim.Eval()
		for _, l := range m.LUTs {
			var assign uint32
			for i, leaf := range l.Leaves {
				if sim.Value(leaf) {
					assign |= 1 << uint(i)
				}
			}
			if l.Lookup(assign) != sim.Value(l.Root) {
				return fmt.Errorf("techmap: LUT at gate %d disagrees with reference on vector %d",
					l.Root, v)
			}
		}
	}
	return nil
}
