package techmap

import (
	"testing"

	"sdmmon/internal/netlist"
)

func TestMapSimpleAnd(t *testing.T) {
	b := netlist.NewBuilder("and2")
	x := b.Input("x")
	y := b.Input("y")
	b.Output("o", b.And(x, y))
	r, err := Map(b.Build(), Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs != 1 || r.FFs != 0 || r.Depth != 1 {
		t.Errorf("and2: %v", r)
	}
}

func TestMapAbsorbsChains(t *testing.T) {
	// A 6-input AND tree fits in: 2 LUT4s (4+3 inputs) or similar; must be
	// at most 2 LUTs and never 5 (one per gate).
	b := netlist.NewBuilder("and6")
	in := b.InputBus("in", 6)
	acc := in[0]
	for _, s := range in[1:] {
		acc = b.And(acc, s)
	}
	b.Output("o", acc)
	r, err := Map(b.Build(), Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs > 2 {
		t.Errorf("and6 took %d LUT4s, want <=2", r.LUTs)
	}
	r6, err := Map(b.Build(), Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r6.LUTs != 1 {
		t.Errorf("and6 took %d LUT6s, want 1", r6.LUTs)
	}
}

func TestMapConstantsAreFree(t *testing.T) {
	// A 4-bit ROM output is a function of 4 address bits: exactly 1 LUT4
	// per output bit once constants are propagated.
	rom := make([]uint64, 16)
	for i := range rom {
		rom[i] = uint64((i*5 + 3) & 0xF)
	}
	b := netlist.NewBuilder("rom16x4")
	addr := b.InputBus("addr", 4)
	b.OutputBus("data", b.LUTRom(addr, rom, 4))
	r, err := Map(b.Build(), Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs > 4 {
		t.Errorf("rom16x4 took %d LUT4s, want <=4", r.LUTs)
	}
}

func TestCarryChainMode(t *testing.T) {
	b := netlist.NewBuilder("add8")
	a := b.InputBus("a", 8)
	x := b.InputBus("x", 8)
	b.OutputBus("s", b.Add(a, x))
	c := b.Build()

	plain, err := Map(c, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	chained, err := Map(c, Options{K: 4, UseCarryChains: true})
	if err != nil {
		t.Fatal(err)
	}
	if chained.CarryALUTs != 8 {
		t.Errorf("add8 used %d carry ALUTs, want 8", chained.CarryALUTs)
	}
	if chained.LUTs != 0 {
		t.Errorf("add8 with chains still used %d generic LUTs", chained.LUTs)
	}
	if plain.CarryALUTs != 0 {
		t.Errorf("plain mapping used carry ALUTs")
	}
	if plain.LUTs <= chained.TotalALUTs()/2 {
		t.Errorf("plain (%d) should cost clearly more than chained (%d)",
			plain.LUTs, chained.TotalALUTs())
	}
}

func TestFFCounting(t *testing.T) {
	b := netlist.NewBuilder("reg")
	d := b.InputBus("d", 5)
	q := b.RegisterBus("q", d)
	b.OutputBus("q", q)
	r, err := Map(b.Build(), Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.FFs != 5 {
		t.Errorf("FFs = %d, want 5", r.FFs)
	}
	if r.LUTs != 0 {
		t.Errorf("pure register file needed %d LUTs", r.LUTs)
	}
}

func TestLogicFeedingFFsIsMapped(t *testing.T) {
	b := netlist.NewBuilder("regfn")
	x := b.Input("x")
	y := b.Input("y")
	q := b.DFF(b.And(x, y), "q")
	b.Output("q", q)
	r, err := Map(b.Build(), Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs != 1 || r.FFs != 1 {
		t.Errorf("regfn: %v", r)
	}
}

func TestOptionsValidation(t *testing.T) {
	b := netlist.NewBuilder("x")
	b.Output("o", b.Input("i"))
	if _, err := Map(b.Build(), Options{K: 1}); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := Map(b.Build(), Options{K: 9}); err == nil {
		t.Error("K=9 accepted")
	}
	if _, err := Map(b.Build(), Options{}); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestDepthReported(t *testing.T) {
	// A 16-input XOR tree needs at least 2 LUT4 levels.
	b := netlist.NewBuilder("xor16")
	in := b.InputBus("in", 16)
	for len(in) > 1 {
		var next []netlist.Signal
		for i := 0; i+1 < len(in); i += 2 {
			next = append(next, b.Xor(in[i], in[i+1]))
		}
		in = next
	}
	b.Output("o", in[0])
	r, err := Map(b.Build(), Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Depth < 2 {
		t.Errorf("xor16 depth = %d, want >= 2", r.Depth)
	}
}

func TestHashUnitsMapAndCompare(t *testing.T) {
	// The Table 3 shape: the structural Merkle adder tree on carry chains
	// must cost fewer combinational cells than the behavioral popcount
	// mapped to generic LUTs.
	merkle := netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{Registered: true})
	bitcount := netlist.BuildBitcountUnit(netlist.BitcountUnitOptions{Registered: true})

	rm, err := Map(merkle, Options{K: 4, UseCarryChains: true})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Map(bitcount, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("merkle: %v", rm)
	t.Logf("bitcount: %v", rb)
	if rm.TotalALUTs() >= rb.TotalALUTs() {
		t.Errorf("merkle (%d ALUTs) should beat bitcount (%d LUTs)",
			rm.TotalALUTs(), rb.LUTs)
	}
	if rm.FFs != 37 || rb.FFs != 38 {
		t.Errorf("FFs: merkle %d (want 37), bitcount %d (want 38)", rm.FFs, rb.FFs)
	}
}

func TestStringer(t *testing.T) {
	r := &Result{Name: "x", LUTs: 3, CarryALUTs: 2, FFs: 1, Depth: 4}
	if r.TotalALUTs() != 5 {
		t.Error("TotalALUTs wrong")
	}
	if len(r.String()) == 0 {
		t.Error("empty String")
	}
}
