// Package techmap maps gate-level netlists (internal/netlist) onto K-input
// FPGA lookup tables, modelling the Stratix IV ALUT fabric of the paper's
// DE4 prototype.
//
// The mapper is a classic priority-cuts area-oriented LUT mapper: it
// enumerates bounded cut sets per gate in topological order, selects a
// representative cut by area flow, and derives the final LUT network by
// walking the chosen cuts back from the outputs. Structural adders tagged
// by the netlist builders can optionally be placed on the dedicated carry
// chain (one ALUT in arithmetic mode per adder bit), which is how real
// synthesis reaches the paper's Table 3 numbers for the Merkle unit.
package techmap

import (
	"fmt"
	"sort"

	"sdmmon/internal/netlist"
)

// Options configures the mapper.
type Options struct {
	// K is the LUT input count. 4 models a classic 4-LUT fabric; 6 models
	// the Stratix IV ALUT in normal mode. Default 4.
	K int
	// MaxCuts bounds the cut set kept per gate (priority cuts). Default 8.
	MaxCuts int
	// UseCarryChains places tagged full adders into arithmetic mode, one
	// ALUT per adder bit, instead of covering them with generic LUTs.
	UseCarryChains bool
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 4
	}
	if o.MaxCuts == 0 {
		o.MaxCuts = 8
	}
	return o
}

// Result reports the mapped design's resource usage.
type Result struct {
	Name       string
	LUTs       int // generic K-LUTs
	CarryALUTs int // ALUTs consumed in arithmetic (carry-chain) mode
	FFs        int // flip-flops
	Depth      int // logic levels on the critical path
}

// TotalALUTs is the combined combinational-cell count (LUTs + carry ALUTs),
// the quantity Table 3 reports in its "LUTs" row.
func (r *Result) TotalALUTs() int { return r.LUTs + r.CarryALUTs }

func (r *Result) String() string {
	return fmt.Sprintf("%s: %d LUTs (+%d carry ALUTs), %d FFs, depth %d",
		r.Name, r.LUTs, r.CarryALUTs, r.FFs, r.Depth)
}

// cut is a sorted set of leaf signals.
type cut []netlist.Signal

func (c cut) contains(s netlist.Signal) bool {
	for _, x := range c {
		if x == s {
			return true
		}
	}
	return false
}

// mergeCuts unions two sorted cuts; ok=false if the result exceeds k leaves.
func mergeCuts(a, b cut, k int) (cut, bool) {
	out := make(cut, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
		if len(out) > k {
			return nil, false
		}
	}
	return out, true
}

type mapper struct {
	c   *netlist.Circuit
	opt Options

	isLeaf    []bool // primary inputs, constants, DFF outputs, chain outputs
	isConst   []bool
	chainGate []bool // gates swallowed by a carry chain
	chainOut  []bool // Sum/Cout signals produced by the chain
	fanout    []int

	cuts    [][]cut   // candidate cuts per gate
	best    []cut     // chosen representative cut
	areaFlw []float64 // area flow of the chosen cut
	depth   []int     // mapped depth
}

// Map runs the technology mapper and returns resource usage.
func Map(c *netlist.Circuit, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if opt.K < 2 || opt.K > 8 {
		return nil, fmt.Errorf("techmap: K=%d out of range 2..8", opt.K)
	}
	res, _, err := mapInternal(c, opt)
	return res, err
}

// mapInternal runs the mapper and exposes its state for post-mapping
// network extraction. opt must already be validated/defaulted.
func mapInternal(c *netlist.Circuit, opt Options) (*Result, *mapper, error) {
	n := len(c.Gates)
	m := &mapper{
		c: c, opt: opt,
		isLeaf:    make([]bool, n),
		isConst:   make([]bool, n),
		chainGate: make([]bool, n),
		chainOut:  make([]bool, n),
		fanout:    make([]int, n),
		cuts:      make([][]cut, n),
		best:      make([]cut, n),
		areaFlw:   make([]float64, n),
		depth:     make([]int, n),
	}

	for i, g := range c.Gates {
		switch g.Kind {
		case netlist.KInput, netlist.KDFF:
			m.isLeaf[i] = true
		case netlist.KConst0, netlist.KConst1:
			m.isConst[i] = true
		}
		for _, in := range g.In {
			m.fanout[in]++
		}
	}
	for _, out := range c.Outputs {
		m.fanout[out]++
	}

	carryALUTs := 0
	if opt.UseCarryChains {
		carryALUTs = m.absorbCarryChains()
	}

	order, err := topoOrder(c)
	if err != nil {
		return nil, nil, err
	}
	for _, g := range order {
		m.enumerate(g)
	}

	luts, depth := m.cover()
	return &Result{
		Name:       c.Name,
		LUTs:       luts,
		CarryALUTs: carryALUTs,
		FFs:        c.NumDFFs(),
		Depth:      depth,
	}, m, nil
}

// absorbCarryChains marks tagged adder cones as chain-mapped. Each tagged
// adder bit costs one ALUT. An adder whose internal gates have external
// fanout is left to the generic mapper.
func (m *mapper) absorbCarryChains() int {
	count := 0
	for _, fa := range m.c.Adders {
		internal := m.adderCone(fa)
		if internal == nil {
			continue
		}
		ok := true
		for g := range internal {
			if g == fa.Sum || g == fa.Cout {
				continue
			}
			// Internal gate referenced outside the adder cone: skip chain.
			ext := m.fanout[g]
			for h := range internal {
				for _, in := range m.c.Gates[h].In {
					if in == g {
						ext--
					}
				}
			}
			if ext > 0 {
				ok = false
			}
		}
		if !ok {
			continue
		}
		for g := range internal {
			m.chainGate[g] = true
		}
		m.chainOut[fa.Sum] = true
		m.isLeaf[fa.Sum] = true
		if fa.Cout >= 0 {
			m.chainOut[fa.Cout] = true
			m.isLeaf[fa.Cout] = true
		}
		count++
	}
	return count
}

// adderCone returns the gates reachable from Sum and Cout down to the
// adder's {A, B, Cin} boundary, or nil if the cone is malformed.
func (m *mapper) adderCone(fa netlist.FullAdder) map[netlist.Signal]bool {
	stop := map[netlist.Signal]bool{fa.A: true, fa.B: true}
	if fa.Cin >= 0 {
		stop[fa.Cin] = true
	}
	cone := map[netlist.Signal]bool{}
	var walk func(netlist.Signal) bool
	walk = func(s netlist.Signal) bool {
		if stop[s] || cone[s] {
			return true
		}
		k := m.c.Gates[s].Kind
		if k == netlist.KInput || k == netlist.KDFF || k == netlist.KConst0 || k == netlist.KConst1 {
			// Reached a non-boundary leaf: cone escapes the adder.
			return false
		}
		cone[s] = true
		for _, in := range m.c.Gates[s].In {
			if !walk(in) {
				return false
			}
		}
		return true
	}
	if !walk(fa.Sum) {
		return nil
	}
	if fa.Cout >= 0 && !walk(fa.Cout) {
		return nil
	}
	return cone
}

func topoOrder(c *netlist.Circuit) ([]netlist.Signal, error) {
	state := make([]int, len(c.Gates))
	var order []netlist.Signal
	var visit func(netlist.Signal) error
	visit = func(g netlist.Signal) error {
		switch state[g] {
		case 1:
			return fmt.Errorf("techmap: combinational cycle at gate %d", g)
		case 2:
			return nil
		}
		state[g] = 1
		if kind := c.Gates[g].Kind; kind != netlist.KDFF && kind != netlist.KInput {
			for _, in := range c.Gates[g].In {
				if err := visit(in); err != nil {
					return err
				}
			}
		}
		state[g] = 2
		order = append(order, g)
		return nil
	}
	for i := range c.Gates {
		if err := visit(netlist.Signal(i)); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// enumerate computes the priority cut set for gate g.
func (m *mapper) enumerate(g netlist.Signal) {
	gt := m.c.Gates[g]
	if m.isLeaf[g] || m.isConst[g] {
		m.cuts[g] = []cut{{}} // leaves contribute themselves at merge time
		m.best[g] = cut{}
		m.areaFlw[g] = 0
		m.depth[g] = 0
		return
	}
	if m.chainGate[g] && !m.chainOut[g] {
		// Swallowed by a carry chain; never referenced by the generic
		// mapper (fanout was verified in absorbCarryChains).
		return
	}

	switch gt.Kind {
	case netlist.KNot, netlist.KAnd, netlist.KOr, netlist.KXor, netlist.KMux:
	default:
		return
	}

	// Base candidate sets per input: the input's own cuts, or the trivial
	// cut {input} if the input is a mapped node/leaf.
	inCuts := make([][]cut, len(gt.In))
	for i, in := range gt.In {
		var cands []cut
		if m.isConst[in] {
			cands = []cut{{}} // constants cost no leaf
		} else if m.isLeaf[in] {
			cands = []cut{{in}}
		} else {
			cands = append(cands, cut{in})
			cands = append(cands, m.cuts[in]...)
		}
		inCuts[i] = cands
	}

	// Cross-merge.
	acc := []cut{{}}
	for _, cands := range inCuts {
		var next []cut
		for _, a := range acc {
			for _, b := range cands {
				if merged, ok := mergeCuts(a, b, m.opt.K); ok {
					next = append(next, merged)
				}
			}
		}
		acc = dedupCuts(next)
		if len(acc) > 4*m.opt.MaxCuts {
			acc = m.prioritize(acc)[:4*m.opt.MaxCuts]
		}
	}
	acc = m.prioritize(acc)
	if len(acc) > m.opt.MaxCuts {
		acc = acc[:m.opt.MaxCuts]
	}
	if len(acc) == 0 {
		acc = []cut{{}}
	}
	m.cuts[g] = acc
	m.best[g] = acc[0]
	m.areaFlw[g] = m.flowOf(acc[0])
	m.depth[g] = m.depthOf(acc[0])
}

func dedupCuts(cs []cut) []cut {
	seen := map[string]bool{}
	out := cs[:0]
	for _, c := range cs {
		key := ""
		for _, s := range c {
			key += fmt.Sprintf("%d,", s)
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	return out
}

// prioritize sorts cuts by (area flow, depth, size).
func (m *mapper) prioritize(cs []cut) []cut {
	sort.SliceStable(cs, func(i, j int) bool {
		fi, fj := m.flowOf(cs[i]), m.flowOf(cs[j])
		if fi != fj {
			return fi < fj
		}
		di, dj := m.depthOf(cs[i]), m.depthOf(cs[j])
		if di != dj {
			return di < dj
		}
		return len(cs[i]) < len(cs[j])
	})
	return cs
}

func (m *mapper) flowOf(c cut) float64 {
	f := 1.0
	for _, leaf := range c {
		if m.isLeaf[leaf] {
			continue
		}
		fo := m.fanout[leaf]
		if fo < 1 {
			fo = 1
		}
		f += m.areaFlw[leaf] / float64(fo)
	}
	return f
}

func (m *mapper) depthOf(c cut) int {
	d := 0
	for _, leaf := range c {
		if m.depth[leaf] > d {
			d = m.depth[leaf]
		}
	}
	return d + 1
}

// cover derives the final LUT network from the chosen cuts.
func (m *mapper) cover() (luts, depth int) {
	needed := map[netlist.Signal]bool{}
	var require func(netlist.Signal)
	require = func(s netlist.Signal) {
		if m.isLeaf[s] || m.isConst[s] || needed[s] {
			return
		}
		if m.chainGate[s] && !m.chainOut[s] {
			return
		}
		needed[s] = true
		for _, leaf := range m.best[s] {
			require(leaf)
		}
	}
	// Roots: primary outputs and DFF data inputs.
	for _, out := range m.c.Outputs {
		require(out)
	}
	for _, g := range m.c.Gates {
		if g.Kind == netlist.KDFF {
			require(g.In[0])
		}
	}
	maxD := 0
	for s := range needed {
		if m.depth[s] > maxD {
			maxD = m.depth[s]
		}
	}
	return len(needed), maxD
}
