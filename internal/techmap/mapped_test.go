package techmap

import (
	"testing"

	"sdmmon/internal/netlist"
)

func TestMapNetworkSimpleFunctions(t *testing.T) {
	b := netlist.NewBuilder("fn")
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	// f = (x & y) ^ ~z — fits one LUT.
	f := b.Xor(b.And(x, y), b.Not(z))
	b.Output("f", f)
	c := b.Build()
	m, err := MapNetwork(c, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.LUTs) != 1 {
		t.Fatalf("got %d LUTs, want 1", len(m.LUTs))
	}
	if err := VerifyMapping(c, m, 64, 1); err != nil {
		t.Fatal(err)
	}
	// The truth table itself: check all 8 assignments.
	l := m.LUTs[0]
	if len(l.Leaves) != 3 {
		t.Fatalf("LUT has %d leaves", len(l.Leaves))
	}
	// Build reference over leaf order.
	pos := map[netlist.Signal]int{}
	for i, leaf := range l.Leaves {
		pos[leaf] = i
	}
	for a := uint32(0); a < 8; a++ {
		bit := func(s netlist.Signal) bool { return a&(1<<uint(pos[s])) != 0 }
		want := (bit(x) && bit(y)) != !bit(z)
		if l.Lookup(a) != want {
			t.Errorf("assign %03b: lut=%v want=%v", a, l.Lookup(a), want)
		}
	}
}

func TestMapNetworkVerifiesHashUnits(t *testing.T) {
	// The flow's equivalence gate on the real Table 3 circuits.
	for _, tc := range []struct {
		name string
		ckt  *netlist.Circuit
		opt  Options
	}{
		{"merkle-K4-chains", netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{}), Options{K: 4, UseCarryChains: true}},
		{"merkle-K4-plain", netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{}), Options{K: 4}},
		{"merkle-K6-plain", netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{}), Options{K: 6}},
		{"bitcount-K4", netlist.BuildBitcountUnit(netlist.BitcountUnitOptions{}), Options{K: 4}},
		{"comparator", netlist.BuildComparator(4), Options{K: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := MapNetwork(tc.ckt, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyMapping(tc.ckt, m, 200, 7); err != nil {
				t.Fatal(err)
			}
			if len(m.LUTs) != m.Result.LUTs {
				t.Errorf("extracted %d LUTs, result says %d", len(m.LUTs), m.Result.LUTs)
			}
		})
	}
}

func TestMapNetworkRegisteredCircuit(t *testing.T) {
	// DFF inputs must be covered; verification drives random input vectors
	// with DFFs at reset state.
	ckt := netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{Registered: true})
	m, err := MapNetwork(ckt, Options{K: 4, UseCarryChains: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMapping(ckt, m, 50, 9); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMappingCatchesCorruptTruth(t *testing.T) {
	b := netlist.NewBuilder("bad")
	x := b.Input("x")
	y := b.Input("y")
	b.Output("f", b.And(x, y))
	c := b.Build()
	m, err := MapNetwork(c, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.LUTs[0].Truth[0] ^= 0xF // corrupt
	if err := VerifyMapping(c, m, 32, 2); err == nil {
		t.Error("corrupted truth table passed verification")
	}
}

func TestVerifyMappingCatchesMissingLUT(t *testing.T) {
	b := netlist.NewBuilder("gap")
	x := b.Input("x")
	y := b.Input("y")
	b.Output("f", b.Or(x, y))
	c := b.Build()
	m, err := MapNetwork(c, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	m.LUTs = nil // drop the cover
	if err := VerifyMapping(c, m, 4, 3); err == nil {
		t.Error("uncovered output passed verification")
	}
}

func TestMapNetworkBadOptions(t *testing.T) {
	b := netlist.NewBuilder("x")
	b.Output("o", b.Input("i"))
	if _, err := MapNetwork(b.Build(), Options{K: 1}); err == nil {
		t.Error("K=1 accepted")
	}
}
