package mhash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMerkleDeterministic(t *testing.T) {
	h := NewMerkle(0xCAFEBABE)
	a := h.Hash(0x12345678)
	for i := 0; i < 10; i++ {
		if h.Hash(0x12345678) != a {
			t.Fatal("hash not deterministic")
		}
	}
}

func TestMerkleWidth(t *testing.T) {
	h := NewMerkle(1)
	if h.Width() != 4 {
		t.Errorf("Width = %d", h.Width())
	}
	if h.NodeCount() != 15 {
		t.Errorf("NodeCount = %d, want 15 (the paper's 8-leaf tree)", h.NodeCount())
	}
	if h.Param() != 1 {
		t.Errorf("Param = %d", h.Param())
	}
}

func TestMerkleOutputRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, width := range []int{1, 2, 4, 8} {
		h, err := NewMerkleWith(rng.Uint32(), width, nil)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint8(1<<width - 1)
		for i := 0; i < 1000; i++ {
			v := h.Hash(rng.Uint32())
			if v&^mask != 0 {
				t.Fatalf("width %d produced %#x", width, v)
			}
		}
		if 2*(32/width)-1 != h.NodeCount() {
			t.Errorf("width %d NodeCount = %d", width, h.NodeCount())
		}
	}
}

func TestMerkleRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, 3, 5, 16, -1} {
		if _, err := NewMerkleWith(0, w, nil); err == nil {
			t.Errorf("width %d accepted", w)
		}
	}
}

// The paper's worked example logic: with the sum compression, the hash of
// instruction 0 under parameter p is the tree-sum of p's nibbles mod 16.
func TestMerkleSumOfNibbles(t *testing.T) {
	p := uint32(0x12345678)
	h := NewMerkle(p)
	var sum uint32
	for i := 0; i < 8; i++ {
		sum += (p >> uint(4*i)) & 0xF
	}
	if got := h.Hash(0); got != uint8(sum&0xF) {
		t.Errorf("Hash(0) = %#x, want nibble sum %#x", got, sum&0xF)
	}
}

// Symmetry noted in the paper: with the sum compression, parameter and
// instruction enter the leaves symmetrically.
func TestMerkleParamInstrSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		p, x := rng.Uint32(), rng.Uint32()
		h1 := NewMerkle(p)
		h2 := NewMerkle(x)
		if h1.Hash(x) != h2.Hash(p) {
			t.Fatalf("sum-compression tree should be symmetric in (param, instr)")
		}
	}
}

func TestParameterChangesOutput(t *testing.T) {
	// Different parameters must produce different hash behaviour on a
	// sample of instructions (SR2 heterogeneity). With 4-bit outputs
	// individual collisions are expected; identical behaviour across many
	// instructions is not.
	rng := rand.New(rand.NewSource(3))
	instrs := make([]uint32, 64)
	for i := range instrs {
		instrs[i] = rng.Uint32()
	}
	h1 := NewMerkle(0x00000001)
	h2 := NewMerkle(0x80000000)
	same := 0
	for _, x := range instrs {
		if h1.Hash(x) == h2.Hash(x) {
			same++
		}
	}
	if same == len(instrs) {
		t.Error("two different parameters produced identical hash behaviour")
	}
}

func TestBitcount(t *testing.T) {
	b := NewBitcount()
	if b.Width() != 4 {
		t.Errorf("Width = %d", b.Width())
	}
	cases := []struct {
		in   uint32
		want uint8
	}{
		{0, 0},
		{1, 1},
		{0xFFFFFFFF, 0}, // 32 & 0xF = 0
		{0xFF, 8},
		{0x0F0F0F0F, 0}, // 16 & 0xF
		{0x7, 3},
	}
	for _, c := range cases {
		if got := b.Hash(c.in); got != c.want {
			t.Errorf("Bitcount(%#x) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBitcountWidths(t *testing.T) {
	b, err := NewBitcountWith(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Hash(0xFF); got != 0 { // 8 & 3
		t.Errorf("2-bit bitcount(0xFF) = %d", got)
	}
	if _, err := NewBitcountWith(0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewBitcountWith(9); err == nil {
		t.Error("width 9 accepted")
	}
}

func TestBitcountIsParameterFree(t *testing.T) {
	// The homogeneity weakness: the baseline hash has no parameter, so the
	// same instruction always hashes identically — what SDMMon fixes.
	b1 := NewBitcount()
	b2 := NewBitcount()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		x := rng.Uint32()
		if b1.Hash(x) != b2.Hash(x) {
			t.Fatal("bitcount should be parameter-free")
		}
	}
}

func TestPopcount(t *testing.T) {
	f := func(v uint32) bool {
		n := 0
		for i := 0; i < 32; i++ {
			if v&(1<<uint(i)) != 0 {
				n++
			}
		}
		return popcount32(v) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompressionFunctions(t *testing.T) {
	sum := SumCompress(4)
	if sum(0xF, 0x1) != 0x0 {
		t.Error("sum wrap failed")
	}
	if sum(0x3, 0x4) != 0x7 {
		t.Error("sum failed")
	}
	xor := XorCompress(4)
	if xor(0xA, 0x5) != 0xF {
		t.Error("xor failed")
	}
	sb := SBoxCompress()
	for a := uint8(0); a < 16; a++ {
		for b := uint8(0); b < 16; b++ {
			if sb(a, b) > 0xF {
				t.Fatal("sbox out of range")
			}
		}
	}
}

func TestXorTreeIsLinear(t *testing.T) {
	// The ablation rationale: with XOR compression the hash differential
	// h(x) xor h(x xor d) is independent of the parameter — a linearity an
	// attacker can exploit. Verify that property holds for XOR and not
	// (generally) for the sum.
	rng := rand.New(rand.NewSource(5))
	d := rng.Uint32()
	x := rng.Uint32()
	hx1, _ := NewMerkleWith(rng.Uint32(), 4, XorCompress(4))
	hx2, _ := NewMerkleWith(rng.Uint32(), 4, XorCompress(4))
	d1 := hx1.Hash(x) ^ hx1.Hash(x^d)
	d2 := hx2.Hash(x) ^ hx2.Hash(x^d)
	if d1 != d2 {
		t.Error("XOR tree differential should be parameter-independent")
	}
	// For the sum compression, find a (d, x) whose differential depends on
	// the parameter (exists for almost any choice).
	found := false
	for i := 0; i < 100 && !found; i++ {
		d := rng.Uint32()
		x := rng.Uint32()
		hs1 := NewMerkle(rng.Uint32())
		hs2 := NewMerkle(rng.Uint32())
		if hs1.Hash(x)^hs1.Hash(x^d) != hs2.Hash(x)^hs2.Hash(x^d) {
			found = true
		}
	}
	if !found {
		t.Error("sum tree differentials appear parameter-independent")
	}
}

func TestHammingDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mk := func(p uint32) Hasher { return NewMerkle(p) }
	pd := HammingDistribution(mk, 500, rng)
	if pd.Width != 4 {
		t.Fatalf("width = %d", pd.Width)
	}
	for d := 1; d <= 32; d++ {
		var n int
		for _, c := range pd.Counts[d] {
			n += c
		}
		if n != 500 {
			t.Fatalf("distance %d has %d samples", d, n)
		}
	}
	// Figure 6 claim: for mid-range input distances the output distribution
	// is close to Binomial(4, 1/2) with mean 2. (Random 32-bit pairs — the
	// paper's sampling method — concentrate at input HD ≈ 16, so this is
	// the regime Figure 6 actually shows. See TestSumTreeExtremeHDArtifact
	// for the behaviour at the extremes.)
	for d := 8; d <= 24; d += 4 {
		m := pd.Mean(d)
		if math.Abs(m-2.0) > 0.25 {
			t.Errorf("input HD %d: mean output HD %.3f, want ≈2", d, m)
		}
		if tv := pd.TotalVariation(d); tv > 0.12 {
			t.Errorf("input HD %d: TV distance %.3f too large", d, tv)
		}
	}
}

// Reproduction finding: with the paper's arithmetic-sum compression the
// whole Merkle tree collapses to "sum of all nibbles mod 16", so for an
// input pair at Hamming distance 32 (y = ^x) the hash difference
// h(y)-h(x) = (8·15 - 2·Σnibbles(x)) mod 16 is always even — the output-HD
// distribution cannot be binomial there. The paper does not observe this
// because sampling random pairs concentrates the data at input HD ≈ 16.
func TestSumTreeExtremeHDArtifact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		p, x := rng.Uint32(), rng.Uint32()
		h := NewMerkle(p)
		dx := (int(h.Hash(^x)) - int(h.Hash(x))) & 0xF
		if dx%2 != 0 {
			t.Fatalf("hash delta %d for complement pair should be even", dx)
		}
	}
	// The S-box compression does not share the artifact: complements can
	// produce odd deltas.
	foundOdd := false
	for i := 0; i < 500 && !foundOdd; i++ {
		h, _ := NewMerkleWith(rng.Uint32(), 4, SBoxCompress())
		x := rng.Uint32()
		if (int(h.Hash(^x))-int(h.Hash(x)))&1 != 0 {
			foundOdd = true
		}
	}
	if !foundOdd {
		t.Error("s-box tree unexpectedly shares the even-delta artifact")
	}
}

func TestReferenceBinomial(t *testing.T) {
	ref := ReferenceBinomial(4)
	want := []float64{1.0 / 16, 4.0 / 16, 6.0 / 16, 4.0 / 16, 1.0 / 16}
	for i := range want {
		if math.Abs(ref[i]-want[i]) > 1e-12 {
			t.Errorf("ref[%d] = %f, want %f", i, ref[i], want[i])
		}
	}
	var sum float64
	for _, p := range ReferenceBinomial(8) {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("binomial(8) does not sum to 1: %f", sum)
	}
}

func TestFlipBitsExactDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for d := 1; d <= 32; d++ {
		x := rng.Uint32()
		y := flipBits(x, d, rng)
		if got := popcount32(x ^ y); got != d {
			t.Fatalf("flipBits(%d) changed %d bits", d, got)
		}
	}
}

func TestCollisionRateNearIdeal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(p uint32) Hasher { return NewMerkle(p) }
	r := CollisionRate(mk, 20000, rng)
	// Ideal = 1/16 = 0.0625; allow generous sampling tolerance.
	if math.Abs(r-0.0625) > 0.01 {
		t.Errorf("collision rate = %.4f, want ≈0.0625", r)
	}
}

func TestEscapeProbabilityGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mk := func(p uint32) Hasher { return NewMerkle(p) }
	probs := EscapeProbability(mk, 2, 50000, rng)
	// k=1: ≈1/16; k=2: ≈1/256 (paper §2.1).
	if math.Abs(probs[1]-1.0/16) > 0.01 {
		t.Errorf("escape(1) = %.4f, want ≈%.4f", probs[1], 1.0/16)
	}
	if math.Abs(probs[2]-1.0/256) > 0.004 {
		t.Errorf("escape(2) = %.5f, want ≈%.5f", probs[2], 1.0/256)
	}
}

func TestParameterSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(p uint32) Hasher { return NewMerkle(p) }
	s := ParameterSensitivity(mk, 20000, rng)
	if math.Abs(s-0.0625) > 0.01 {
		t.Errorf("parameter sensitivity = %.4f, want ≈0.0625", s)
	}
	// The bitcount baseline is fully parameter-insensitive (always 1.0).
	mkB := func(p uint32) Hasher { return NewBitcount() }
	if s := ParameterSensitivity(mkB, 1000, rng); s != 1.0 {
		t.Errorf("bitcount sensitivity = %.4f, want 1.0", s)
	}
}

func TestChiSquareRandomBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	mk := func(p uint32) Hasher { return NewMerkle(p) }
	pd := HammingDistribution(mk, 2000, rng)
	// With 4 degrees of freedom, chi-square for a truly random-looking
	// distribution should be modest in the mid-range regime Figure 6
	// reports. The paper concedes input HD 1 is "slightly different", and
	// the sum-tree has further structure at the extremes (see
	// TestSumTreeExtremeHDArtifact); test the middle band.
	for d := 8; d <= 24; d++ {
		if chi := pd.ChiSquare(d); chi > 150 {
			t.Errorf("input HD %d: chi-square %.1f implausibly large", d, chi)
		}
	}
}

func TestTableRendering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(p uint32) Hasher { return NewMerkle(p) }
	pd := HammingDistribution(mk, 50, rng)
	s := pd.Table()
	if len(s) == 0 {
		t.Fatal("empty table")
	}
	// 1 header + 32 rows.
	lines := 0
	for _, c := range s {
		if c == '\n' {
			lines++
		}
	}
	if lines != 33 {
		t.Errorf("table has %d lines, want 33", lines)
	}
}

// Property: hash depends only on (param, instr).
func TestQuickHashPure(t *testing.T) {
	f := func(p, x uint32) bool {
		return NewMerkle(p).Hash(x) == NewMerkle(p).Hash(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: output always fits in 4 bits for the paper configuration.
func TestQuickHashRange(t *testing.T) {
	f := func(p, x uint32) bool {
		return NewMerkle(p).Hash(x) <= 0xF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
