package mhash

import (
	"math/rand"
	"testing"
)

// TestFastHasherEquivalence: the cached hasher is bit-identical to its
// wrapped reference across hash families, widths, compression functions,
// random parameters and random words — including repeated words (cache
// hits) and index collisions (evictions).
func TestFastHasherEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	type variant struct {
		name string
		mk   func(param uint32) (Hasher, error)
	}
	variants := []variant{
		{"merkle-sum-w4", func(p uint32) (Hasher, error) { return NewMerkle(p), nil }},
		{"merkle-sum-w1", func(p uint32) (Hasher, error) { return NewMerkleWith(p, 1, nil) }},
		{"merkle-sum-w2", func(p uint32) (Hasher, error) { return NewMerkleWith(p, 2, nil) }},
		{"merkle-sum-w8", func(p uint32) (Hasher, error) { return NewMerkleWith(p, 8, nil) }},
		{"merkle-xor-w4", func(p uint32) (Hasher, error) { return NewMerkleWith(p, 4, XorCompress(4)) }},
		{"merkle-sbox-w4", func(p uint32) (Hasher, error) { return NewMerkleWith(p, 4, SBoxCompress()) }},
		{"bitcount-w4", func(uint32) (Hasher, error) { return NewBitcount(), nil }},
		{"bitcount-w6", func(uint32) (Hasher, error) { return NewBitcountWith(6) }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				ref, err := v.mk(rng.Uint32())
				if err != nil {
					t.Fatal(err)
				}
				// Tiny cache (16 lines) to force constant collisions and
				// evictions.
				fast := NewFast(ref, 4)
				if fast.Width() != ref.Width() {
					t.Fatalf("width %d != %d", fast.Width(), ref.Width())
				}
				// A small word pool guarantees repeats (hits) on top of the
				// eviction pressure.
				pool := make([]uint32, 64)
				for i := range pool {
					pool[i] = rng.Uint32()
				}
				for i := 0; i < 4096; i++ {
					w := pool[rng.Intn(len(pool))]
					if got, want := fast.Hash(w), ref.Hash(w); got != want {
						t.Fatalf("trial %d: word %#x: fast=%#x ref=%#x", trial, w, got, want)
					}
				}
				if fast.Hits == 0 || fast.Misses == 0 {
					t.Fatalf("degenerate cache exercise: hits=%d misses=%d", fast.Hits, fast.Misses)
				}
			}
		})
	}
}

// TestFastHasherHitRate: with the default geometry a small static word set
// is fully resident after the first pass.
func TestFastHasherHitRate(t *testing.T) {
	fast := NewFastDefault(NewMerkle(0xFEED))
	words := make([]uint32, 200)
	rng := rand.New(rand.NewSource(9))
	for i := range words {
		words[i] = rng.Uint32()
	}
	for pass := 0; pass < 100; pass++ {
		for _, w := range words {
			fast.Hash(w)
		}
	}
	// Collisions can evict a few lines, but the steady-state rate must be
	// high; with 200 words in 4096 lines thrashing is essentially absent.
	if r := fast.HitRate(); r < 0.95 {
		t.Fatalf("hit rate %.3f below 0.95 (hits=%d misses=%d)", r, fast.Hits, fast.Misses)
	}
}

// TestFastHasherWordKeyed: two different words produce their own hashes even
// when observed at the "same address" — the cache has no notion of a PC, so
// self-modified or packet-derived code can never alias a stale entry. This
// is the property a PC-keyed cache would violate.
func TestFastHasherWordKeyed(t *testing.T) {
	ref := NewMerkle(0x1357)
	fast := NewFastDefault(ref)
	// Same "location", different contents over time.
	w1, w2 := uint32(0x27BDFFE8), uint32(0x03E00008) // addiu $sp,-24 ; jr $ra
	for i := 0; i < 3; i++ {
		if fast.Hash(w1) != ref.Hash(w1) {
			t.Fatal("w1 mismatch")
		}
		if fast.Hash(w2) != ref.Hash(w2) {
			t.Fatal("w2 mismatch")
		}
	}
	if ref.Hash(w1) == ref.Hash(w2) {
		t.Skip("hash collision under this parameter; property vacuous here")
	}
	if fast.Hash(w1) == fast.Hash(w2) {
		t.Fatal("cache conflated two distinct words")
	}
}

func TestFastHasherFlush(t *testing.T) {
	fast := NewFast(NewBitcount(), 6)
	for i := uint32(0); i < 100; i++ {
		fast.Hash(i * 0x9E3779B9)
	}
	fast.Flush()
	if fast.Hits != 0 || fast.Misses != 0 {
		t.Fatal("counters survived flush")
	}
	if got, want := fast.Hash(42), NewBitcount().Hash(42); got != want {
		t.Fatalf("post-flush hash %#x != %#x", got, want)
	}
}

func TestFastHasherCacheBitsClamped(t *testing.T) {
	small := NewFast(NewBitcount(), -3)
	if len(small.entries) != 1<<4 {
		t.Fatalf("min clamp: %d entries", len(small.entries))
	}
	big := NewFast(NewBitcount(), 40)
	if len(big.entries) != 1<<20 {
		t.Fatalf("max clamp: %d entries", len(big.entries))
	}
}

func BenchmarkFastHasherHit(b *testing.B) {
	fast := NewFastDefault(NewMerkle(0xCAFEBABE))
	words := [8]uint32{0x27BDFFE8, 0xAFBF0014, 0x03E00008, 0x24020001,
		0x8FBF0014, 0x00000000, 0x1000FFFF, 0x2610FFFF}
	for _, w := range words {
		fast.Hash(w)
	}
	var sink uint8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink ^= fast.Hash(words[i&7])
	}
	_ = sink
}
