package mhash

// FastHasher wraps any Hasher with a direct-mapped instruction-hash cache
// keyed by the 32-bit instruction word itself. The monitor hashes every
// retired instruction, but the set of distinct instruction words a core
// executes is tiny (the static words of the installed binary, plus whatever
// an attack injects), so almost every lookup hits the cache and costs one
// array read instead of a full compression-tree evaluation.
//
// Keying matters for security: the cache is indexed by the *instruction
// word*, never by the program counter. The hash is a pure function of the
// word, so a word-keyed entry can never go stale — not even under the
// packet-derived-code attack, where the core executes attacker bytes out of
// packet memory and self-modified words appear at previously seen
// addresses. A PC-keyed cache would replay the hash of the word that used
// to live at that address and silently accept the substitution; a
// word-keyed cache hashes what actually retired. The equivalence tests pin
// this down on the E8 stack-smash payload.
//
// FastHasher is a concrete type: the monitor's inner loop calls Hash
// without interface dispatch. The wrapped Hasher is consulted only on cache
// misses. The zero allocation guarantee of the packet path includes this
// type: Hash never allocates.
type FastHasher struct {
	inner Hasher
	width int
	shift uint
	// entries packs one cache line into a uint64:
	// bit 63 = valid, bits 8..39 = instruction word (tag), bits 0..7 = hash.
	entries []uint64

	// Hits and Misses count lookups; they are diagnostics for sizing the
	// cache, not part of the hardware model.
	Hits, Misses uint64
}

const fastValid = 1 << 63

// DefaultFastCacheBits sizes the cache at 4096 entries (32 KiB): an order
// of magnitude more lines than the largest built-in application has
// distinct instruction words, so steady-state traffic sees a ~100% hit
// rate.
const DefaultFastCacheBits = 12

// NewFast builds a FastHasher over inner with 2^cacheBits direct-mapped
// entries. cacheBits is clamped to [4, 20].
func NewFast(inner Hasher, cacheBits int) *FastHasher {
	if cacheBits < 4 {
		cacheBits = 4
	}
	if cacheBits > 20 {
		cacheBits = 20
	}
	return &FastHasher{
		inner:   inner,
		width:   inner.Width(),
		shift:   uint(32 - cacheBits),
		entries: make([]uint64, 1<<cacheBits),
	}
}

// NewFastDefault builds a FastHasher with the default cache geometry.
func NewFastDefault(inner Hasher) *FastHasher { return NewFast(inner, DefaultFastCacheBits) }

// Inner returns the wrapped hash unit.
func (f *FastHasher) Inner() Hasher { return f.inner }

// Width returns the hash width in bits.
func (f *FastHasher) Width() int { return f.width }

// Hash returns the W-bit hash of the instruction word. Hit path: one
// multiply, one shift, one array read. Miss path: delegate to the wrapped
// hasher and install the line (direct-mapped, so a colliding word simply
// evicts). Never allocates.
func (f *FastHasher) Hash(instr uint32) uint8 {
	// Fibonacci scrambling spreads the structured bit patterns of machine
	// code (opcode/funct fields cluster in the low and high bits) across
	// the index space.
	idx := (instr * 2654435761) >> f.shift
	e := f.entries[idx]
	if e&fastValid != 0 && uint32(e>>8) == instr {
		f.Hits++
		return uint8(e)
	}
	f.Misses++
	h := f.inner.Hash(instr)
	f.entries[idx] = fastValid | uint64(instr)<<8 | uint64(h)
	return h
}

// HitRate returns the fraction of lookups served from the cache.
func (f *FastHasher) HitRate() float64 {
	total := f.Hits + f.Misses
	if total == 0 {
		return 0
	}
	return float64(f.Hits) / float64(total)
}

// Flush invalidates every cache line (used by tests; the hardware analogue
// is a cache clear on re-installation, though even that is unnecessary —
// word-keyed entries remain valid across binaries under the same
// parameter).
func (f *FastHasher) Flush() {
	for i := range f.entries {
		f.entries[i] = 0
	}
	f.Hits, f.Misses = 0, 0
}

var _ Hasher = (*FastHasher)(nil)
