package mhash

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// PairDistribution is the Figure 6 data set: for every possible Hamming
// distance of a 32-bit input pair (1..32), the distribution of Hamming
// distances of the corresponding W-bit hash pair (0..W).
type PairDistribution struct {
	Width  int       // hash width W in bits
	Pairs  int       // pairs sampled per input distance
	Counts [33][]int // Counts[d][h]: input HD d produced output HD h
}

// NewHasher constructs a fresh Hasher for a given parameter; used by the
// analysis driver so each sampled pair can use an independent parameter
// (the paper notes input and key are symmetric in the Merkle tree).
type NewHasher func(param uint32) Hasher

// HammingDistribution reproduces the Figure 6 experiment: for each input
// Hamming distance d in 1..32, sample pairsPerDistance random 32-bit pairs
// (x, y) with HD(x,y) = d under a fresh random parameter, and record the
// Hamming distance of their hashes.
func HammingDistribution(mk NewHasher, pairsPerDistance int, rng *rand.Rand) *PairDistribution {
	probe := mk(0)
	w := probe.Width()
	pd := &PairDistribution{Width: w, Pairs: pairsPerDistance}
	for d := 1; d <= 32; d++ {
		pd.Counts[d] = make([]int, w+1)
		for i := 0; i < pairsPerDistance; i++ {
			h := mk(rng.Uint32())
			x := rng.Uint32()
			y := flipBits(x, d, rng)
			hd := hamming8(h.Hash(x), h.Hash(y))
			pd.Counts[d][hd]++
		}
	}
	return pd
}

// flipBits returns x with exactly d distinct random bit positions flipped.
func flipBits(x uint32, d int, rng *rand.Rand) uint32 {
	perm := rng.Perm(32)
	for _, p := range perm[:d] {
		x ^= 1 << uint(p)
	}
	return x
}

func hamming8(a, b uint8) int {
	return popcount32(uint32(a ^ b))
}

// Mean returns the mean output Hamming distance for input distance d.
func (pd *PairDistribution) Mean(d int) float64 {
	var sum, n int
	for h, c := range pd.Counts[d] {
		sum += h * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Fractions returns Counts[d] normalized to probabilities.
func (pd *PairDistribution) Fractions(d int) []float64 {
	out := make([]float64, len(pd.Counts[d]))
	var n int
	for _, c := range pd.Counts[d] {
		n += c
	}
	if n == 0 {
		return out
	}
	for h, c := range pd.Counts[d] {
		out[h] = float64(c) / float64(n)
	}
	return out
}

// ReferenceBinomial returns the output-HD distribution an ideal random
// mapping would produce: two independent uniform W-bit values differ in each
// bit with probability 1/2, i.e. Binomial(W, 1/2).
func ReferenceBinomial(width int) []float64 {
	out := make([]float64, width+1)
	total := math.Pow(2, float64(width))
	c := 1.0
	for k := 0; k <= width; k++ {
		out[k] = c / total
		c = c * float64(width-k) / float64(k+1)
	}
	return out
}

// ChiSquare computes the chi-square statistic of the measured output-HD
// distribution for input distance d against the ideal binomial reference.
// Small values mean "indistinguishable from random changes" (the paper's
// Figure 6 claim); the statistic has width degrees of freedom.
func (pd *PairDistribution) ChiSquare(d int) float64 {
	ref := ReferenceBinomial(pd.Width)
	var n int
	for _, c := range pd.Counts[d] {
		n += c
	}
	if n == 0 {
		return 0
	}
	var chi float64
	for h, c := range pd.Counts[d] {
		exp := ref[h] * float64(n)
		if exp > 0 {
			diff := float64(c) - exp
			chi += diff * diff / exp
		}
	}
	return chi
}

// TotalVariation computes the total-variation distance between the measured
// distribution at input distance d and the binomial reference (0 = exactly
// random-looking, 1 = completely distinguishable).
func (pd *PairDistribution) TotalVariation(d int) float64 {
	ref := ReferenceBinomial(pd.Width)
	frac := pd.Fractions(d)
	var tv float64
	for h := range frac {
		tv += math.Abs(frac[h] - ref[h])
	}
	return tv / 2
}

// Table renders the distribution as rows "inputHD  p(out=0) ... p(out=W)
// mean", matching the series plotted in Figure 6.
func (pd *PairDistribution) Table() string {
	s := "inHD"
	for h := 0; h <= pd.Width; h++ {
		s += fmt.Sprintf("  p(h=%d)", h)
	}
	s += "   mean    TV-vs-random\n"
	for d := 1; d <= 32; d++ {
		s += fmt.Sprintf("%4d", d)
		for _, f := range pd.Fractions(d) {
			s += fmt.Sprintf("  %.4f", f)
		}
		s += fmt.Sprintf("  %.3f  %.4f\n", pd.Mean(d), pd.TotalVariation(d))
	}
	return s
}

// CSV renders the distribution as comma-separated rows for plotting:
// input_hd, p(out=0..W), mean, tv_vs_random.
func (pd *PairDistribution) CSV() string {
	var sb strings.Builder
	sb.WriteString("input_hd")
	for h := 0; h <= pd.Width; h++ {
		fmt.Fprintf(&sb, ",p_out_%d", h)
	}
	sb.WriteString(",mean,tv_vs_random\n")
	for d := 1; d <= 32; d++ {
		fmt.Fprintf(&sb, "%d", d)
		for _, f := range pd.Fractions(d) {
			fmt.Fprintf(&sb, ",%.6f", f)
		}
		fmt.Fprintf(&sb, ",%.4f,%.6f\n", pd.Mean(d), pd.TotalVariation(d))
	}
	return sb.String()
}

// CollisionRate estimates the probability that two uniformly random
// distinct instruction words collide under a fresh random parameter. An
// ideal W-bit hash gives 2^-W.
func CollisionRate(mk NewHasher, samples int, rng *rand.Rand) float64 {
	coll := 0
	for i := 0; i < samples; i++ {
		h := mk(rng.Uint32())
		x := rng.Uint32()
		y := rng.Uint32()
		for y == x {
			y = rng.Uint32()
		}
		if h.Hash(x) == h.Hash(y) {
			coll++
		}
	}
	return float64(coll) / float64(samples)
}

// EscapeProbability estimates the probability that a random k-instruction
// attack sequence produces exactly the hash sequence of a given valid
// k-instruction sequence under an unknown random parameter — the paper's
// geometric-decrease argument (§2.1: 1/16 for one instruction, 1/256 for
// two, ...). Returns the measured probability for each k in 1..maxK.
func EscapeProbability(mk NewHasher, maxK, trials int, rng *rand.Rand) []float64 {
	out := make([]float64, maxK+1)
	for k := 1; k <= maxK; k++ {
		hits := 0
		for t := 0; t < trials; t++ {
			h := mk(rng.Uint32())
			match := true
			for i := 0; i < k; i++ {
				valid := rng.Uint32()
				attack := rng.Uint32()
				if h.Hash(valid) != h.Hash(attack) {
					match = false
					break
				}
			}
			if match {
				hits++
			}
		}
		out[k] = float64(hits) / float64(trials)
	}
	return out
}

// ParameterSensitivity estimates the probability that the same instruction
// hashes to the same value under two independent random parameters — the
// homogeneity metric: low sensitivity would let one brute-forced attack
// transfer across routers. Ideal: 2^-W.
func ParameterSensitivity(mk NewHasher, samples int, rng *rand.Rand) float64 {
	same := 0
	for i := 0; i < samples; i++ {
		instr := rng.Uint32()
		h1 := mk(rng.Uint32())
		h2 := mk(rng.Uint32())
		if h1.Hash(instr) == h2.Hash(instr) {
			same++
		}
	}
	return float64(same) / float64(samples)
}
