// Package mhash implements the parameterizable hash functions used by the
// hardware monitor.
//
// The primary function is the paper's Merkle-tree hash (§3.2, Figure 4): a
// binary tree of 2W-to-W-bit compression nodes. Leaf nodes combine W bits of
// the secret 32-bit hash parameter with W bits of the 32-bit instruction
// word; inner nodes combine the outputs of their children. With the paper's
// W = 4 this yields 8 leaves and a 15-node tree producing the 4-bit hash
// reported to the monitor. The compression function used in the prototype is
// the 4-bit arithmetic sum of both inputs.
//
// A conventional bitcount (population count) hash is provided as the
// baseline of Table 3, and alternative compression functions (XOR, S-box)
// support the ablation benches.
package mhash

import "fmt"

// Compress is a 2W-to-W-bit compression function. Inputs and output are
// W-bit values stored in uint8 (W ≤ 8).
type Compress func(a, b uint8) uint8

// Hasher maps a 32-bit instruction word to a short hash reported to the
// hardware monitor.
type Hasher interface {
	// Hash returns the W-bit hash of the instruction word.
	Hash(instr uint32) uint8
	// Width returns W, the hash width in bits.
	Width() int
}

// SumCompress returns the paper's compression function: the W-bit
// arithmetic sum (addition modulo 2^W) of both inputs.
func SumCompress(width int) Compress {
	mask := uint8(1<<width - 1)
	return func(a, b uint8) uint8 { return (a + b) & mask }
}

// XorCompress returns bitwise XOR compression (a weaker, linear choice —
// used by the ablation bench to show why the prototype prefers the sum:
// XOR makes the whole tree linear in GF(2), so differentials are
// parameter-independent).
func XorCompress(width int) Compress {
	mask := uint8(1<<width - 1)
	return func(a, b uint8) uint8 { return (a ^ b) & mask }
}

// SBoxCompress returns a fixed nonlinear 8-to-4-bit compression built from
// a small substitution box (only defined for width 4). The table is a
// de-correlated permutation-derived box generated from the AES S-box low
// nibbles, giving stronger avalanche than the arithmetic sum at higher LUT
// cost.
func SBoxCompress() Compress {
	return func(a, b uint8) uint8 {
		return sbox8to4[(a&0xF)<<4|(b&0xF)]
	}
}

// sbox8to4 maps an 8-bit input to 4 bits. Derived from the low nibbles of
// the AES S-box (a fixed, public constant — the security of the scheme
// rests on the secret parameter, not on the box).
var sbox8to4 = [256]uint8{
	0x3, 0xC, 0x7, 0xB, 0x2, 0xB, 0xF, 0x5, 0x0, 0x1, 0x7, 0xB, 0xE, 0x7, 0xB, 0x6,
	0xA, 0x2, 0x9, 0xD, 0xA, 0x9, 0x7, 0x0, 0xD, 0x4, 0x2, 0xF, 0xC, 0x4, 0x2, 0x0,
	0x7, 0xD, 0x3, 0x6, 0x6, 0xF, 0x7, 0xC, 0x4, 0x5, 0x5, 0x1, 0x1, 0x8, 0x1, 0x5,
	0x4, 0x7, 0x3, 0x3, 0x8, 0x6, 0x5, 0xA, 0x7, 0x2, 0x0, 0x2, 0x3, 0x7, 0x2, 0x5,
	0x9, 0x3, 0xC, 0xA, 0xB, 0xE, 0xA, 0x0, 0x2, 0x3, 0x6, 0x3, 0x9, 0x3, 0xF, 0x4,
	0x3, 0x1, 0x0, 0xD, 0x0, 0xC, 0x1, 0xA, 0xA, 0xB, 0xE, 0x9, 0xA, 0xC, 0x8, 0xF,
	0x0, 0xF, 0xA, 0xB, 0x3, 0xD, 0x3, 0x5, 0x5, 0x9, 0x2, 0xF, 0x0, 0x3, 0xE, 0x8,
	0x1, 0x3, 0x0, 0x3, 0x2, 0xD, 0x6, 0x5, 0xC, 0x6, 0x8, 0x1, 0xC, 0xD, 0x8, 0x2,
	0xD, 0xC, 0x3, 0xC, 0x7, 0x7, 0x4, 0x7, 0x4, 0xE, 0xC, 0xD, 0x4, 0xF, 0x9, 0x3,
	0x0, 0x1, 0xF, 0xB, 0x2, 0x5, 0xA, 0x6, 0x6, 0xE, 0x8, 0x4, 0xE, 0xE, 0xB, 0xB,
	0x0, 0x2, 0xA, 0xA, 0x9, 0x6, 0x4, 0x5, 0x2, 0x2, 0xA, 0x2, 0x1, 0x6, 0x4, 0x9,
	0x7, 0x8, 0x7, 0xD, 0xC, 0x5, 0x4, 0x9, 0xC, 0x6, 0x4, 0xA, 0x5, 0x6, 0xE, 0x8,
	0xA, 0x8, 0x5, 0x6, 0x6, 0x6, 0x4, 0x6, 0x8, 0xB, 0x4, 0xF, 0xB, 0xB, 0xB, 0xA,
	0x0, 0x8, 0x9, 0x1, 0x9, 0x9, 0xE, 0xE, 0x1, 0xD, 0x5, 0x5, 0x0, 0x5, 0xE, 0xE,
	0x1, 0x8, 0x8, 0x1, 0x9, 0xD, 0xE, 0x4, 0x8, 0xE, 0x7, 0xB, 0xB, 0xD, 0x5, 0xF,
	0xC, 0x1, 0x9, 0xD, 0xF, 0x0, 0x7, 0x1, 0x1, 0x9, 0x9, 0xE, 0xF, 0xF, 0x9, 0x6,
}

// Merkle is the paper's parameterizable Merkle-tree hash.
type Merkle struct {
	param    uint32
	width    int
	compress Compress
}

// NewMerkle builds the paper's configuration: 4-bit hash, arithmetic-sum
// compression, with the given 32-bit parameter.
func NewMerkle(param uint32) *Merkle {
	return &Merkle{param: param, width: 4, compress: SumCompress(4)}
}

// NewMerkleWith builds a Merkle hash of the given width (must divide 32 and
// be 1..8) with a custom compression function.
func NewMerkleWith(param uint32, width int, c Compress) (*Merkle, error) {
	switch width {
	case 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("mhash: width %d must be one of 1, 2, 4, 8", width)
	}
	if c == nil {
		c = SumCompress(width)
	}
	return &Merkle{param: param, width: width, compress: c}, nil
}

// Param returns the secret 32-bit hash parameter.
func (m *Merkle) Param() uint32 { return m.param }

// Width returns the hash width in bits.
func (m *Merkle) Width() int { return m.width }

// Hash computes the W-bit hash of the 32-bit instruction word by evaluating
// the compression tree: leaves combine parameter chunks with instruction
// chunks, inner nodes combine child outputs, down to a single W-bit root.
// Allocation-free: this runs once per retired instruction in the simulator.
func (m *Merkle) Hash(instr uint32) uint8 {
	w := m.width
	mask := uint32(1<<w - 1)
	n := 32 / w // number of W-bit chunks, at most 32
	var buf [32]uint8
	level := buf[:n]
	for i := 0; i < n; i++ {
		sh := uint(i * w)
		p := uint8((m.param >> sh) & mask)
		d := uint8((instr >> sh) & mask)
		level[i] = m.compress(p, d)
	}
	// Reduce to the root.
	for len(level) > 1 {
		next := level[:len(level)/2]
		for i := range next {
			next[i] = m.compress(level[2*i], level[2*i+1])
		}
		level = next
	}
	return level[0]
}

// NodeCount returns the number of compression nodes in the tree (Table 3
// resource accounting: each node is one 2W-to-W compressor).
func (m *Merkle) NodeCount() int {
	n := 32 / m.width
	return 2*n - 1
}

// Bitcount is the conventional baseline hash of Table 3: the number of set
// bits in the instruction word, truncated to the hash width. It has no
// secret parameter, which is exactly the homogeneity weakness SDMMon
// removes.
type Bitcount struct {
	width int
}

// NewBitcount returns the bitcount hash at the paper's 4-bit width.
func NewBitcount() *Bitcount { return &Bitcount{width: 4} }

// NewBitcountWith returns a bitcount hash with the given width (1..8 bits).
func NewBitcountWith(width int) (*Bitcount, error) {
	if width < 1 || width > 8 {
		return nil, fmt.Errorf("mhash: width %d out of range 1..8", width)
	}
	return &Bitcount{width: width}, nil
}

// Width returns the hash width in bits.
func (b *Bitcount) Width() int { return b.width }

// Hash counts set bits and truncates to the hash width.
func (b *Bitcount) Hash(instr uint32) uint8 {
	n := popcount32(instr)
	return uint8(n) & uint8(1<<b.width-1)
}

func popcount32(v uint32) int {
	v = v - ((v >> 1) & 0x55555555)
	v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
	v = (v + (v >> 4)) & 0x0F0F0F0F
	return int((v * 0x01010101) >> 24)
}

// Compile-time interface checks.
var (
	_ Hasher = (*Merkle)(nil)
	_ Hasher = (*Bitcount)(nil)
)
