package main

import (
	"os"
	"path/filepath"
	"testing"

	"sdmmon/internal/asm"
	"sdmmon/internal/monitor"
)

func TestRunBuiltinApp(t *testing.T) {
	if err := run("ipv4cm", "", "0xdeadbeef", 4, "", "", true, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSourceFileWithDumps(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.s")
	if err := os.WriteFile(src, []byte(`
	.text 0x0
main:
	li $t0, 3
loop:
	addiu $t0, $t0, -1
	bnez $t0, loop
	break
`), 0o644); err != nil {
		t.Fatal(err)
	}
	gout := filepath.Join(dir, "graph.bin")
	bout := filepath.Join(dir, "app.bin")
	if err := run("", src, "0x42", 4, gout, bout, false, false, filepath.Join(dir, "cfg.dot")); err != nil {
		t.Fatal(err)
	}
	graw, err := os.ReadFile(gout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := monitor.Deserialize(graw); err != nil {
		t.Fatalf("dumped graph invalid: %v", err)
	}
	braw, err := os.ReadFile(bout)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := asm.Deserialize(braw); err != nil {
		t.Fatalf("dumped binary invalid: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "0x1", 4, "", "", true, false, ""); err == nil {
		t.Error("no input accepted")
	}
	if err := run("ipv4cm", "also.s", "0x1", 4, "", "", true, false, ""); err == nil {
		t.Error("both inputs accepted")
	}
	if err := run("ipv4cm", "", "zzz", 4, "", "", true, false, ""); err == nil {
		t.Error("bad param accepted")
	}
	if err := run("ipv4cm", "", "0x1", 5, "", "", true, false, ""); err == nil {
		t.Error("bad width accepted")
	}
	if err := run("bogus", "", "0x1", 4, "", "", true, false, ""); err == nil {
		t.Error("bogus app accepted")
	}
	if err := run("", "/nonexistent/file.s", "0x1", 4, "", "", true, false, ""); err == nil {
		t.Error("missing source accepted")
	}
}
