// Command mongen is the operator's offline analysis tool (Figure 1): it
// assembles an application (a built-in one or an assembly source file),
// extracts the monitoring graph under a hash parameter, and prints the
// basic-block CFG, the per-instruction graph, and size statistics.
//
//	mongen -app ipv4cm -param 0xdeadbeef
//	mongen -src my.s -param 0x1 -dump-graph graph.bin -dump-binary app.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"sdmmon/internal/apps"
	"sdmmon/internal/asm"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
)

func main() {
	appName := flag.String("app", "", "built-in application name")
	srcFile := flag.String("src", "", "assembly source file")
	paramStr := flag.String("param", "0xdeadbeef", "32-bit hash parameter")
	width := flag.Int("width", 4, "hash width in bits (1,2,4,8)")
	dumpGraph := flag.String("dump-graph", "", "write serialized graph to file")
	dumpBinary := flag.String("dump-binary", "", "write serialized binary to file")
	dotFile := flag.String("dot", "", "write the Graphviz CFG to file")
	cfgDump := flag.Bool("cfg", true, "print the basic-block CFG")
	nodes := flag.Bool("nodes", false, "print every graph node")
	flag.Parse()

	if err := run(*appName, *srcFile, *paramStr, *width, *dumpGraph, *dumpBinary, *cfgDump, *nodes, *dotFile); err != nil {
		fmt.Fprintln(os.Stderr, "mongen:", err)
		os.Exit(1)
	}
}

func run(appName, srcFile, paramStr string, width int, dumpGraph, dumpBinary string, cfgDump, nodes bool, dotFile string) error {
	var prog *asm.Program
	var err error
	switch {
	case appName != "" && srcFile != "":
		return fmt.Errorf("give either -app or -src, not both")
	case appName != "":
		app, err := apps.ByName(appName)
		if err != nil {
			return err
		}
		prog, err = app.Program()
		if err != nil {
			return err
		}
	case srcFile != "":
		src, err := os.ReadFile(srcFile)
		if err != nil {
			return err
		}
		prog, err = asm.Assemble(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -app or -src is required")
	}

	param64, err := strconv.ParseUint(paramStr, 0, 32)
	if err != nil {
		return fmt.Errorf("bad -param: %w", err)
	}
	h, err := mhash.NewMerkleWith(uint32(param64), width, nil)
	if err != nil {
		return err
	}
	g, err := monitor.Extract(prog, h)
	if err != nil {
		return err
	}

	binBytes := prog.Serialize()
	graphBytes := g.Serialize()
	fmt.Printf("binary: %d instructions, %d bytes serialized, entry 0x%x\n",
		len(prog.CodeWords()), len(binBytes), prog.Entry)
	fmt.Printf("graph:  %d nodes, %d bytes serialized, %d bits in hardware layout (%.1f%% of binary)\n",
		g.Len(), len(graphBytes), g.MemoryBits(),
		100*float64(g.MemoryBits())/float64(8*len(binBytes)))
	fmt.Printf("hash:   %d-bit Merkle sum tree, param 0x%08x\n\n", width, uint32(param64))

	if cfgDump {
		cfg, err := monitor.BuildCFG(prog, g)
		if err != nil {
			return err
		}
		fmt.Println(cfg.Dump(prog))
	}
	if nodes {
		for _, a := range g.Addrs() {
			n := g.Node(a)
			w, _ := prog.WordAt(a)
			fmt.Printf("%06x  h=%x  %-28s ->", a, n.Hash, isa.Disasm(a, w))
			for _, s := range n.Succ {
				fmt.Printf(" %06x", s)
			}
			fmt.Println()
		}
	}
	if dotFile != "" {
		cfg, err := monitor.BuildCFG(prog, g)
		if err != nil {
			return err
		}
		if err := os.WriteFile(dotFile, []byte(cfg.DotCFG(prog)), 0o644); err != nil {
			return err
		}
	}
	if dumpBinary != "" {
		if err := os.WriteFile(dumpBinary, binBytes, 0o644); err != nil {
			return err
		}
	}
	if dumpGraph != "" {
		if err := os.WriteFile(dumpGraph, graphBytes, 0o644); err != nil {
			return err
		}
	}
	return nil
}
