package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sdmmon/internal/obs"
)

func TestRunBasic(t *testing.T) {
	if err := run("ipv4cm", 2, 200, 2, true, 0, 1, 1, 100, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run("ipv4cm", 1, 50, 1, true, 0, 0, 2, 100, 8, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnmonitored(t *testing.T) {
	if err := run("ipv4safe", 1, 50, 1, false, 0, 1, 3, 100, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllApps(t *testing.T) {
	for _, app := range []string{"ipv4cm", "ipv4safe", "udpecho", "counter", "acl"} {
		if err := run(app, 1, 30, 0, true, 0, 0, 4, 100, 0, nil); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
	}
}

func TestRunBadApp(t *testing.T) {
	if err := run("bogus", 1, 1, 0, true, 0, 0, 1, 100, 0, nil); err == nil {
		t.Error("bogus app accepted")
	}
}

// A run with a collector attached populates the aggregate counters, and both
// telemetry files land on disk with parseable content.
func TestRunWritesTelemetry(t *testing.T) {
	col := obs.New(obs.DefaultRingDepth)
	if err := run("ipv4cm", 2, 100, 2, true, 0, 1, 5, 100, 0, col); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if snap.Counters["np_packets_processed_total"] != 102 {
		t.Errorf("np_packets_processed_total = %d, want 102", snap.Counters["np_packets_processed_total"])
	}
	if snap.Counters["np_alarms_total"] == 0 {
		t.Error("attacks ran but np_alarms_total is zero")
	}

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "metrics.json")
	promPath := filepath.Join(dir, "metrics.prom")
	tracePath := filepath.Join(dir, "trace.jsonl")
	if err := writeTelemetry(col, jsonPath, tracePath); err != nil {
		t.Fatal(err)
	}
	if err := writeTelemetry(col, promPath, ""); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("-metrics JSON does not parse: %v", err)
	}
	if back.Counters["np_packets_processed_total"] != 102 {
		t.Errorf("JSON snapshot diverged: %+v", back.Counters)
	}

	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "np_packets_processed_total 102\n") {
		t.Errorf(".prom export missing the processed counter:\n%s", prom)
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	sawAlarm := false
	for _, line := range strings.Split(strings.TrimSpace(string(trace)), "\n") {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line does not parse: %q: %v", line, err)
		}
		if ev.Kind == "alarm" {
			sawAlarm = true
		}
	}
	if !sawAlarm {
		t.Error("trace has no alarm events despite attack packets")
	}
}

// Every fault scenario holds its own acceptance assertions; with a good
// seed all pass, and the structured error carries mode and scenario.
func TestFaultScenariosPass(t *testing.T) {
	if err := runFaults("all", "ipv4cm", 1, 1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultScenarioUnknownIsError(t *testing.T) {
	err := runFaults("nope", "ipv4cm", 1, 1, nil)
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	var se *scenarioError
	if errors.As(err, &se) {
		t.Fatalf("unknown-scenario error should not be a scenarioError: %v", err)
	}
}

func TestRolloutScenariosPass(t *testing.T) {
	col := obs.New(obs.DefaultRingDepth)
	if err := runRollout("all", 4, 2, 1, col); err != nil {
		t.Fatal(err)
	}
	// The shared collector saw the fleet's upgrade lifecycle.
	snap := col.Snapshot()
	if snap.Counters["np_commits_total"] == 0 {
		t.Errorf("rollout scenarios ran but np_commits_total = 0")
	}
	if snap.Counters["sec_installs_total"] == 0 {
		t.Errorf("rollout scenarios ran but sec_installs_total = 0")
	}
}
