package main

import "testing"

func TestRunBasic(t *testing.T) {
	if err := run("ipv4cm", 2, 200, 2, true, 0, 1, 1, 100, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTrace(t *testing.T) {
	if err := run("ipv4cm", 1, 50, 1, true, 0, 0, 2, 100, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnmonitored(t *testing.T) {
	if err := run("ipv4safe", 1, 50, 1, false, 0, 1, 3, 100, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllApps(t *testing.T) {
	for _, app := range []string{"ipv4cm", "ipv4safe", "udpecho", "counter", "acl"} {
		if err := run(app, 1, 30, 0, true, 0, 0, 4, 100, 0); err != nil {
			t.Fatalf("%s: %v", app, err)
		}
	}
}

func TestRunBadApp(t *testing.T) {
	if err := run("bogus", 1, 1, 0, true, 0, 0, 1, 100, 0); err == nil {
		t.Error("bogus app accepted")
	}
}
