package main

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"sort"

	"sdmmon/internal/threat"
)

// threatSweepSeeds is how many seeds the escalation-latency sweep runs per
// family; small enough to keep the drill interactive, large enough for a
// stable p50.
const threatSweepSeeds = 16

// runThreat executes the graded threat-response drill: each requested
// campaign family runs twice with the same seed, and the drill fails —
// non-zero exit — unless the two runs produce identical level trajectories
// and byte-identical incident records, and the result passes the family's
// own self-assertions (burst reaches CRITICAL and recovers, ramp walks the
// staircase and is ended by isolation, slowdrip stays at or below LOW). A
// multi-seed sweep then reports packets-to-escalation percentiles.
func runThreat(scenario string, seed int64, incidentsPath string) error {
	families := threat.Families()
	if scenario != "all" {
		if _, _, err := familyKnown(scenario); err != nil {
			return err
		}
		families = []string{scenario}
	}

	var captured []threat.IncidentRecord
	for _, family := range families {
		fmt.Printf("threat campaign %q, seed %d:\n", family, seed)
		cfg := threat.CampaignConfig{Family: family, Seed: seed}
		a, err := threat.RunCampaign(cfg)
		if err != nil {
			return &scenarioError{Mode: "threat", Scenario: family, Err: err}
		}
		b, err := threat.RunCampaign(cfg)
		if err != nil {
			return &scenarioError{Mode: "threat", Scenario: family, Err: err}
		}
		if !reflect.DeepEqual(a.Trajectory, b.Trajectory) {
			return &scenarioError{Mode: "threat", Scenario: family,
				Err: fmt.Errorf("replay diverged: trajectories differ across identical runs")}
		}
		if !bytes.Equal(a.IncidentBytes, b.IncidentBytes) {
			return &scenarioError{Mode: "threat", Scenario: family,
				Err: fmt.Errorf("replay diverged: incident records not byte-identical (%d vs %d bytes)",
					len(a.IncidentBytes), len(b.IncidentBytes))}
		}
		if err := a.Check(); err != nil {
			return &scenarioError{Mode: "threat", Scenario: family, Err: err}
		}

		for _, tr := range a.Trajectory {
			arrow := "escalate"
			if tr.To < tr.From {
				arrow = "relax"
			}
			fmt.Printf("  tick %3d  %-8s %s -> %s  score %6.2f  shard %d core %2d",
				tr.Tick, arrow, tr.From, tr.To, tr.Score, tr.Shard, tr.Core)
			if len(tr.Actions) > 0 {
				fmt.Printf("  actions %v", tr.Actions)
			}
			fmt.Println()
		}
		st := a.Stats
		fmt.Printf("  peak=%s final=%s incidents=%d replay=byte-identical (%d bytes)\n",
			a.Peak, a.Final, len(a.Incidents), len(a.IncidentBytes))
		fmt.Printf("  conservation: arrived=%d = processed=%d + taildrops=%d + starved=%d + backlog=%d (marked=%d alarms=%d faults=%d)\n",
			st.Arrived, st.Processed, st.TailDrops, st.Starved, st.Backlog,
			st.Marked, st.Alarms, st.Faults)
		if a.IsolatedCores > 0 || a.FailedShards > 0 || a.LockdownFired || a.StagedZeroized {
			fmt.Printf("  responses: isolated_cores=%d failed_shards=%d lockdown=%v staged_zeroized=%v\n",
				a.IsolatedCores, a.FailedShards, a.LockdownFired, a.StagedZeroized)
		}
		captured = append(captured, a.Incidents...)

		if err := sweepEscalation(family); err != nil {
			return &scenarioError{Mode: "threat", Scenario: family, Err: err}
		}
		fmt.Println()
	}

	if incidentsPath != "" {
		f, err := os.Create(incidentsPath)
		if err != nil {
			return err
		}
		err = threat.WriteIncidents(f, captured)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing incidents to %s: %w", incidentsPath, err)
		}
		fmt.Printf("wrote %d incident records to %s\n", len(captured), incidentsPath)
	}
	return nil
}

// familyKnown validates a family name against the canonical list.
func familyKnown(name string) (string, int, error) {
	for i, f := range threat.Families() {
		if f == name {
			return f, i, nil
		}
	}
	return "", 0, fmt.Errorf("npsim: unknown threat campaign %q (want %v or all)", name, threat.Families())
}

// sweepEscalation runs the family across seeds and reports the
// packets-to-escalation distribution per level: how much traffic the
// attacker got through before the classifier reached each grade.
func sweepEscalation(family string) error {
	reached := map[threat.Level][]int64{}
	for seed := int64(1); seed <= threatSweepSeeds; seed++ {
		res, err := threat.RunCampaign(threat.CampaignConfig{Family: family, Seed: seed})
		if err != nil {
			return err
		}
		if err := res.Check(); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		for l := threat.Low; int(l) < threat.NumLevels; l++ {
			if p := res.PacketsToLevel[l]; p >= 0 {
				reached[l] = append(reached[l], p)
			}
		}
	}
	fmt.Printf("  packets-to-escalation over %d seeds:\n", threatSweepSeeds)
	for l := threat.Low; int(l) < threat.NumLevels; l++ {
		samplesAt := reached[l]
		if len(samplesAt) == 0 {
			fmt.Printf("    %-8s never reached\n", l)
			continue
		}
		fmt.Printf("    %-8s reached %2d/%d  p50=%d p99=%d\n",
			l, len(samplesAt), threatSweepSeeds, quantile(samplesAt, 0.50), quantile(samplesAt, 0.99))
	}
	return nil
}

// quantile returns the q-th order statistic (nearest-rank) of xs.
func quantile(xs []int64, q float64) int64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}
