package main

import (
	"errors"
	"fmt"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/fault"
	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/seccrypto"
	"sdmmon/internal/timing"
)

// runRollout drives the staged live-upgrade scenarios: a clean canaried
// fleet upgrade (with an anti-downgrade replay attempt afterwards), a bad
// canary that trips the health gate and rolls the fleet back, and an upgrade
// over a faulty management link. Deterministic per seed.
func runRollout(scenario string, routers, cores int, seed int64, col *obs.Collector) error {
	scenarios := map[string]func(int, int, int64, *obs.Collector) error{
		"clean":     rolloutClean,
		"badcanary": rolloutBadCanary,
		"lossy":     rolloutLossy,
	}
	if scenario == "all" {
		for _, name := range []string{"clean", "badcanary", "lossy"} {
			if err := scenarios[name](routers, cores, seed, col); err != nil {
				return &scenarioError{Mode: "rollout", Scenario: name, Err: err}
			}
		}
		return nil
	}
	fn, ok := scenarios[scenario]
	if !ok {
		return fmt.Errorf("unknown rollout scenario %q (want clean, badcanary, lossy, or all)", scenario)
	}
	if err := fn(routers, cores, seed, col); err != nil {
		return &scenarioError{Mode: "rollout", Scenario: scenario, Err: err}
	}
	return nil
}

// rolloutFleet manufactures a supervised fleet and installs version 1.0.0 of
// the echo application on every router, returning the operator, devices, and
// the first router's v1 wire package (for the replay demonstration).
func rolloutFleet(routers, cores int, col *obs.Collector) (*core.Operator, []*core.Device, []byte, error) {
	man, err := core.NewManufacturer("acme", nil)
	if err != nil {
		return nil, nil, nil, err
	}
	op, err := core.NewOperator("isp", nil)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := man.Certify(op); err != nil {
		return nil, nil, nil, err
	}
	op.SetAppVersion("udpecho", "1.0.0")
	cfg := core.DefaultDeviceConfig()
	cfg.Cores = cores
	cfg.Supervisor = npu.DefaultSupervisorConfig()
	cfg.Obs = col
	var devices []*core.Device
	var replayWire []byte
	for i := 0; i < routers; i++ {
		dev, err := man.Manufacture(fmt.Sprintf("r%d", i), cfg)
		if err != nil {
			return nil, nil, nil, err
		}
		wire, err := op.ProgramWire(dev.Public(), apps.UDPEcho())
		if err != nil {
			return nil, nil, nil, err
		}
		if _, err := dev.Install(wire); err != nil {
			return nil, nil, nil, err
		}
		if i == 0 {
			replayWire = wire
		}
		devices = append(devices, dev)
	}
	return op, devices, replayWire, nil
}

func printRollout(rep *network.RolloutReport, devices []*core.Device) {
	model := timing.NiosIIPrototype()
	fmt.Printf("  target=%s waves=%d completed=%v rolledback=%v\n",
		rep.Target, rep.Waves, rep.Completed, rep.RolledBack)
	if rep.Reason != "" {
		fmt.Printf("  reason: %s\n", rep.Reason)
	}
	for _, o := range rep.Outcomes {
		live, _ := deviceLive(devices, o.DeviceID)
		attempts := 0
		if o.Delivery != nil {
			attempts = o.Delivery.Attempts
		}
		fmt.Printf("    %-4s wave=%2d phase=%-11s attempts=%d live=%s\n",
			o.DeviceID, o.Wave, o.Phase, attempts, live)
	}
	status := "CONSERVED"
	if !rep.Conserved {
		status = "VIOLATED"
	}
	fmt.Printf("  traffic: processed=%d forwarded=%d dropped=%d alarms=%d faults=%d — %s\n",
		rep.Processed, rep.Forwarded, rep.Dropped, rep.Alarms, rep.Faults, status)
	fmt.Printf("  cost: %.2fs total (%.2fs wire, %.2fs crypto, %.2fs backoff), data-plane drain %.2fµs (%d cycles)\n",
		rep.Cost.TotalSeconds(model), rep.Cost.WireSeconds, rep.Cost.ProcessSeconds,
		rep.Cost.BackoffSeconds, rep.Cost.DrainSeconds(model)*1e6, rep.Cost.DrainCycles)
}

func deviceLive(devices []*core.Device, id string) (string, bool) {
	for _, d := range devices {
		if d.ID == id {
			return d.LiveApp()
		}
	}
	return "?", false
}

// rolloutClean upgrades the fleet 1.0.0 → 1.1.0 over a clean link, then
// replays the captured 1.0.0 package to show the anti-downgrade ledger
// rejecting it.
func rolloutClean(routers, cores int, seed int64, col *obs.Collector) error {
	fmt.Printf("rollout clean: %d routers x %d cores, canary + health gate\n", routers, cores)
	op, devices, replayWire, err := rolloutFleet(routers, cores, col)
	if err != nil {
		return err
	}
	op.SetAppVersion("udpecho", "1.1.0")
	link := network.NewLossyLink(network.GigE(), fault.LinkFaults{}, seed)
	link.Obs = col
	rep, err := network.UpgradeFleet(op, devices, apps.UDPEcho(), network.RolloutConfig{
		Link: link, Seed: seed,
	}, nil)
	if err != nil {
		return err
	}
	printRollout(rep, devices)
	if !rep.Completed || rep.Alarms != 0 || rep.Faults != 0 || !rep.Conserved {
		return fmt.Errorf("clean rollout not clean: %+v", rep)
	}

	// Replay attack: re-deliver the captured, correctly signed 1.0.0 package
	// to r0. The signature verifies; the sequence ledger refuses it.
	_, err = devices[0].Install(replayWire)
	if errors.Is(err, seccrypto.ErrDowngrade) {
		fmt.Printf("  replay of v1.0.0 package: REJECTED (%v)\n", err)
		return nil
	}
	return fmt.Errorf("replayed v1 package was not rejected as a downgrade: %v", err)
}

// rolloutBadCanary upgrades toward a release that faults on every packet.
// The canary's health gate must catch it and roll the fleet back with no
// router left on the bad version.
func rolloutBadCanary(routers, cores int, seed int64, col *obs.Collector) error {
	fmt.Printf("rollout badcanary: %d routers x %d cores, faulty 2.0.0 release\n", routers, cores)
	op, devices, _, err := rolloutFleet(routers, cores, col)
	if err != nil {
		return err
	}
	op.SetAppVersion("udpecho", "2.0.0")
	link := network.NewLossyLink(network.GigE(), fault.LinkFaults{}, seed)
	link.Obs = col
	rep, err := network.UpgradeFleet(op, devices, apps.FaultyEcho(), network.RolloutConfig{
		Link: link, Seed: seed,
	}, nil)
	if !errors.Is(err, network.ErrHealthRegression) {
		return fmt.Errorf("bad canary did not trip the health gate: %v", err)
	}
	printRollout(rep, devices)
	if !rep.RolledBack || !rep.Conserved {
		return fmt.Errorf("bad canary: expected rollback with conservation: %+v", rep)
	}
	for _, dev := range devices {
		if live, ok := dev.LiveApp(); !ok || live != "udpecho@1.0.0" {
			return fmt.Errorf("%s left on %q after rollback, want udpecho@1.0.0", dev.ID, live)
		}
	}
	fmt.Printf("  every router restored to udpecho@1.0.0\n")
	return nil
}

// rolloutLossy upgrades over a dropping/corrupting management link: staging
// retries per router until the package verifies, and the data plane never
// sees any of it.
func rolloutLossy(routers, cores int, seed int64, col *obs.Collector) error {
	fmt.Printf("rollout lossy: %d routers x %d cores, 30%% drop / 15%% corrupt link\n", routers, cores)
	op, devices, _, err := rolloutFleet(routers, cores, col)
	if err != nil {
		return err
	}
	op.SetAppVersion("udpecho", "1.2.0")
	link := network.NewLossyLink(network.GigE(),
		fault.LinkFaults{DropRate: 0.3, CorruptRate: 0.15}, seed)
	link.Obs = col
	rep, err := network.UpgradeFleet(op, devices, apps.UDPEcho(), network.RolloutConfig{
		Link: link, Seed: seed,
	}, nil)
	if err != nil {
		return err
	}
	printRollout(rep, devices)
	if !rep.Completed || !rep.Conserved {
		return fmt.Errorf("lossy rollout did not complete cleanly: %+v", rep)
	}
	if rep.Cost.Attempts <= rep.Cost.Deliveries {
		return fmt.Errorf("lossy link produced no retries (attempts=%d deliveries=%d) — seed too kind?",
			rep.Cost.Attempts, rep.Cost.Deliveries)
	}
	return nil
}
