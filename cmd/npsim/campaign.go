package main

import (
	"bytes"
	"fmt"

	"sdmmon/internal/campaign"
)

// campaignSweepSeeds is how many seeds the detection-latency sweep runs
// per family (shared by -campaign and the -bench campaign_detection
// series); small enough to stay interactive, large enough for a stable
// p50.
const campaignSweepSeeds = 16

// runCampaign executes the adversarial campaign drill: each requested
// family runs once directly and once from its wire-encoded spec (the
// encode → decode → re-run path an operator replaying a captured campaign
// would take), and the drill fails — non-zero exit — unless the two
// results are byte-identical under the canonical replay encoding and the
// result passes the family's own self-assertions. A multi-seed sweep then
// reports the packets-to-detection distribution, and `all` finishes with
// the fleet-wide collision evasion drill (crack → replay → rotate →
// replay).
func runCampaign(scenario string, seed int64) error {
	families := campaign.Families()
	if scenario != "all" {
		if err := campaignFamilyKnown(scenario); err != nil {
			return err
		}
		families = []string{scenario}
	}

	for _, family := range families {
		fmt.Printf("attack campaign %q, seed %d:\n", family, seed)
		a, err := campaign.RunCampaign(campaign.Config{Family: family, Seed: seed})
		if err != nil {
			return &scenarioError{Mode: "campaign", Scenario: family, Err: err}
		}
		// Replay through the wire codec: the second run starts from the
		// decoded bytes of the first run's resolved spec.
		spec, err := campaign.DecodeSpec(a.Spec.Encode())
		if err != nil {
			return &scenarioError{Mode: "campaign", Scenario: family,
				Err: fmt.Errorf("wire round trip: %w", err)}
		}
		b, err := campaign.RunSpec(spec)
		if err != nil {
			return &scenarioError{Mode: "campaign", Scenario: family, Err: err}
		}
		ab, err := a.ReplayBytes()
		if err != nil {
			return &scenarioError{Mode: "campaign", Scenario: family, Err: err}
		}
		bb, err := b.ReplayBytes()
		if err != nil {
			return &scenarioError{Mode: "campaign", Scenario: family, Err: err}
		}
		if !bytes.Equal(ab, bb) {
			return &scenarioError{Mode: "campaign", Scenario: family,
				Err: fmt.Errorf("replay diverged: results not byte-identical across the wire round trip (%d vs %d bytes)",
					len(ab), len(bb))}
		}
		if err := a.Check(); err != nil {
			return &scenarioError{Mode: "campaign", Scenario: family, Err: err}
		}

		fmt.Printf("  peak=%s final=%s detect@%d packets  mutants %d/%d detected  evasion depth %.1f\n",
			a.Peak, a.Final, a.PacketsToDetect, a.MutantsDetected, len(a.Mutants), a.EvasionDepth)
		fmt.Printf("  responses: isolated=%d tightened=%d lockdown=%v  incidents=%d  replay=byte-identical (%d bytes)\n",
			a.IsolatedCores, a.AdmissionTightened, a.LockdownFired, len(a.Incidents), len(ab))
		st := a.Stats
		fmt.Printf("  conservation: arrived=%d = processed=%d + taildrops=%d + starved=%d + backlog=%d (marked=%d alarms=%d)\n",
			st.Arrived, st.Processed, st.TailDrops, st.Starved, st.Backlog, st.Marked, st.Alarms)
		if a.Collision != nil {
			fmt.Printf("  collision search: %d probes, %d cycles, found=%v exhausted=%v\n",
				a.Collision.Attempts, a.Collision.Cycles, a.Collision.Found, a.Collision.Exhausted)
		}
		if a.SlowDrip != nil {
			fmt.Printf("  slowdrip: frontier duty %.4f (floor %.2f), %d packets slipped over %d epochs\n",
				a.SlowDrip.FrontierDuty, campaign.SlowDripDutyFloor, a.SlowDrip.SlippedPackets, a.SlowDrip.Epochs)
		}

		d, err := campaign.MeasureDetection(family, campaignSweepSeeds, seed)
		if err != nil {
			return &scenarioError{Mode: "campaign", Scenario: family, Err: err}
		}
		fmt.Printf("  detection latency over %d seeds: %d/%d detected  p50=%d p99=%d min=%d max=%d pkts  mean evasion %.1f\n\n",
			d.Runs, d.Detected, d.Runs, d.P50, d.P99, d.Min, d.Max, d.MeanEvasionDepth)
	}

	if scenario == "all" {
		return runFleetEvasion(seed)
	}
	return nil
}

// runFleetEvasion runs the fleet-wide collision evasion drill twice and
// self-asserts determinism plus the drill's own containment checks.
func runFleetEvasion(seed int64) error {
	fmt.Printf("fleet evasion drill, seed %d:\n", seed)
	cfg := campaign.FleetDrillConfig{Seed: seed}
	a, err := campaign.CollisionFleetDrill(cfg)
	if err != nil {
		return &scenarioError{Mode: "campaign", Scenario: "fleet-evasion", Err: err}
	}
	b, err := campaign.CollisionFleetDrill(cfg)
	if err != nil {
		return &scenarioError{Mode: "campaign", Scenario: "fleet-evasion", Err: err}
	}
	if *a != *b {
		return &scenarioError{Mode: "campaign", Scenario: "fleet-evasion",
			Err: fmt.Errorf("replay diverged: drill results differ across identical runs")}
	}
	if err := a.Check(); err != nil {
		return &scenarioError{Mode: "campaign", Scenario: "fleet-evasion", Err: err}
	}
	fmt.Printf("  cracked router 0 in %d probes (%d cycles, budget %d)\n",
		a.CrackAttempts, a.CrackCycles, a.ProbeBudget)
	fmt.Printf("  variant transfer: pre-rotation %d/%d routers, post-rotation %d/%d\n",
		a.PreTransfer, a.Routers, a.PostTransfer, a.Routers)
	fmt.Printf("  post-rotation re-crack cost: p50=%d p99=%d probes, %d searches exhausted\n",
		a.SearchP50, a.SearchP99, a.SearchExhausted)
	return nil
}

// campaignFamilyKnown validates a family name against the canonical list.
func campaignFamilyKnown(name string) error {
	for _, f := range campaign.Families() {
		if f == name {
			return nil
		}
	}
	return fmt.Errorf("npsim: unknown campaign family %q (want %v or all)", name, campaign.Families())
}
