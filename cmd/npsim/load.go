package main

import (
	"fmt"

	"sdmmon/internal/apps"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/shard"
)

// runLoad drives the sharded traffic plane under deliberate overload: K
// line-card NPs behind the flow-affinity dispatcher, a tight submission
// loop that outruns the drain workers (so admission control visibly marks
// and tail-drops), and — with more than one shard — a mid-run failover
// drill that kills the last shard under live traffic. The scenario asserts
// its own acceptance: packet conservation across the whole plane, forward
// progress on the survivors, and the expected failover count.
func runLoad(appName string, shards, cores, packets int, seed int64, clockMHz float64, col *obs.Collector) error {
	if err := loadScenario(appName, shards, cores, packets, seed, clockMHz, col); err != nil {
		return &scenarioError{Mode: "load", Scenario: "overload", Err: err}
	}
	return nil
}

func loadScenario(appName string, shards, cores, packets int, seed int64, clockMHz float64, col *obs.Collector) error {
	if shards < 1 {
		return fmt.Errorf("need at least one shard (got %d)", shards)
	}
	app, err := apps.ByName(appName)
	if err != nil {
		return err
	}
	prog, err := app.Program()
	if err != nil {
		return err
	}
	nps := make([]*npu.NP, shards)
	for i := range nps {
		// Each line card gets its own hash parameter, exactly as an
		// operator programming a fleet would issue them (SR2).
		param := uint32(seed+int64(i))*2654435761 + 0x600D
		g, err := monitor.Extract(prog, mhash.NewMerkle(param))
		if err != nil {
			return err
		}
		np, err := npu.New(npu.Config{
			Cores:           cores,
			MonitorsEnabled: true,
			Supervisor:      npu.DefaultSupervisorConfig(),
		})
		if err != nil {
			return err
		}
		if err := np.InstallAll(appName, prog.Serialize(), g.Serialize(), param); err != nil {
			return err
		}
		nps[i] = np
	}
	plane, err := shard.NewPlane(shard.Config{
		NPs:           nps,
		QueueCapacity: 256,
		MarkThreshold: 64,
		BatchSize:     64,
		Obs:           col,
	})
	if err != nil {
		return err
	}
	gen, err := network.NewFlowGenerator(256, seed)
	if err != nil {
		return err
	}
	fmt.Printf("npsim load: %s on %d shards x %d cores, %d packets, flow-affinity dispatch\n",
		appName, shards, cores, packets)

	drillAt := -1
	if shards > 1 {
		drillAt = packets * 3 / 5
	}
	var queued, marked, dropped, starved int
	for i := 0; i < packets; i++ {
		if i == drillAt {
			// Failover drill: quarantine every core of the last shard
			// while its worker is draining. Quarantine takes the slot
			// lock, so this is safe against in-flight packets.
			for c := 0; c < cores; c++ {
				if err := nps[shards-1].Quarantine(c); err != nil {
					return err
				}
			}
			fmt.Printf("  drill: quarantined shard %d at packet %d\n", shards-1, i)
		}
		switch plane.Submit(gen.Next()) {
		case shard.AdmitQueued:
			queued++
		case shard.AdmitMarked:
			marked++
		case shard.AdmitDropped:
			dropped++
		case shard.AdmitStarved:
			starved++
		}
	}
	plane.Close()

	st := plane.Stats()
	fmt.Printf("  admission: %d queued, %d CE-marked, %d tail-dropped, %d starved\n",
		queued, marked, dropped, starved)
	fmt.Printf("  %-6s %9s %9s %9s %9s %9s %8s %8s %6s\n",
		"shard", "arrived", "fwd", "appdrop", "taildrop", "starved", "maxdepth", "batches", "state")
	var makespan uint64
	for _, s := range st.Shards {
		state := "ok"
		if s.Failed {
			state = "FAILED"
		}
		fmt.Printf("  %-6d %9d %9d %9d %9d %9d %8d %8d %6s\n",
			s.Shard, s.Arrived, s.Forwarded, s.AppDrops, s.TailDrops, s.Starved, s.MaxDepth, s.Batches, state)
		if span := s.Cycles / uint64(cores); span > makespan {
			makespan = span
		}
	}
	processed := st.Forwarded + st.AppDrops
	fmt.Printf("  conservation: arrived %d = forwarded %d + app-drops %d + rejected %d + tail-drops %d + starved %d + backlog %d\n",
		st.Arrived, st.Forwarded, st.AppDrops, st.Rejected, st.TailDrops, st.Starved, st.Backlog)
	if makespan > 0 && processed > 0 {
		agg := float64(processed) * clockMHz * 1e6 / float64(makespan)
		fmt.Printf("  simulated aggregate: %.2f Mpps at %.0f MHz (makespan %d cycles on the slowest shard)\n",
			agg/1e6, clockMHz, makespan)
	}

	// Acceptance.
	if !st.Conserved() {
		return fmt.Errorf("packet conservation broken: %+v", st)
	}
	if st.Arrived != uint64(packets) {
		return fmt.Errorf("arrived %d, submitted %d", st.Arrived, packets)
	}
	if st.Forwarded == 0 {
		return fmt.Errorf("plane forwarded nothing")
	}
	if shards > 1 && st.Failovers < 1 {
		return fmt.Errorf("failover drill ran but no shard failed over")
	}
	if shards == 1 && st.Failovers != 0 {
		return fmt.Errorf("unexpected failover on a healthy single-shard plane")
	}
	fmt.Printf("  PASS: conserved across %d shards, %d failover(s)\n", shards, st.Failovers)
	return nil
}
