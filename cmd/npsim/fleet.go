package main

import (
	"errors"
	"fmt"

	"sdmmon/internal/fault"
	"sdmmon/internal/fleet"
	"sdmmon/internal/network"
)

// runFleet drives the hierarchical control-plane drills: a clean wave-based
// rotation rollout, a partitioned group that is healed and resumed from the
// saved report, and a regressing wave the health gate halts and rolls back.
// Every scenario is self-asserting and deterministic per seed.
func runFleet(scenario string, routers int, seed int64) error {
	if routers < 64 {
		routers = 64 // the drills need populated waves and several groups
	}
	scenarios := map[string]func(int, int64) error{
		"clean":     fleetClean,
		"partition": fleetPartition,
		"badwave":   fleetBadWave,
	}
	if scenario == "all" {
		for _, name := range []string{"clean", "partition", "badwave"} {
			if err := scenarios[name](routers, seed); err != nil {
				return &scenarioError{Mode: "fleet", Scenario: name, Err: err}
			}
		}
		return nil
	}
	fn, ok := scenarios[scenario]
	if !ok {
		return fmt.Errorf("unknown fleet scenario %q (want clean, partition, badwave, or all)", scenario)
	}
	if err := fn(routers, seed); err != nil {
		return &scenarioError{Mode: "fleet", Scenario: scenario, Err: err}
	}
	return nil
}

// fleetDrillConfig sizes groups so every drill has several aggregation
// domains, and keeps retry budgets small so partitioned waves fail fast.
func fleetDrillConfig(routers int, seed int64) (fleet.Config, fleet.RolloutConfig) {
	gs := routers / 8
	if gs < 8 {
		gs = 8
	}
	cfg := fleet.Config{
		Routers:   routers,
		GroupSize: gs,
		Seed:      seed,
		Faults:    fault.LinkFaults{DropRate: 0.05, CorruptRate: 0.02},
	}
	rcfg := fleet.RolloutConfig{
		Gate: fleet.GateConfig{HealthPackets: 8},
		Policy: network.RetryPolicy{
			MaxAttempts:        8,
			BaseBackoffSeconds: 0.1,
			MaxBackoffSeconds:  2,
			JitterFrac:         0.25,
		},
	}
	return cfg, rcfg
}

func printFleetReport(rep *fleet.FleetReport) {
	states := map[fleet.RouterState]int{}
	for i := range rep.Routers {
		states[rep.Routers[i].State]++
	}
	fmt.Printf("  release=%s completed=%v halted=%v makespan=%.2fs attempts=%d\n",
		rep.Release.Version, rep.Completed, rep.Halted, rep.MakespanSeconds, rep.TotalAttempts)
	for w, st := range rep.Waves {
		fmt.Printf("    wave %d: %s\n", w, st)
	}
	for _, st := range []fleet.RouterState{fleet.StatePending, fleet.StateStaged,
		fleet.StateCommitted, fleet.StateRolledBack, fleet.StateUnreachable} {
		if states[st] > 0 {
			fmt.Printf("    %d routers %s\n", states[st], st)
		}
	}
}

// fleetClean runs the rotation rollout to completion and checks the
// rotation invariant: afterwards no two routers share a hash parameter.
func fleetClean(routers int, seed int64) error {
	cfg, rcfg := fleetDrillConfig(routers, seed)
	fmt.Printf("fleet clean: %d routers in groups of %d, 5%% drop / 2%% corrupt\n",
		cfg.Routers, cfg.GroupSize)
	f, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	ctl, err := fleet.NewController(f, rcfg)
	if err != nil {
		return err
	}
	rep, err := ctl.Run()
	if err != nil {
		return err
	}
	printFleetReport(rep)
	if !rep.Completed {
		return fmt.Errorf("clean rollout did not complete")
	}
	seen := map[uint32]string{}
	for id, p := range f.LiveParams() {
		if other, dup := seen[p]; dup {
			return fmt.Errorf("rotation invariant violated: %s and %s share parameter %#x", id, other, p)
		}
		seen[p] = id
	}
	if len(seen) != routers {
		return fmt.Errorf("%d live parameters for %d routers", len(seen), routers)
	}
	fmt.Printf("  rotation invariant: %d pairwise-distinct hash parameters\n", len(seen))
	return nil
}

// fleetPartition cuts one group's backhaul for the whole first run, then
// heals it and resumes from the serialized report: stragglers recover,
// committed routers are not re-delivered.
func fleetPartition(routers int, seed int64) error {
	cfg, rcfg := fleetDrillConfig(routers, seed)
	groups := (cfg.Routers + cfg.GroupSize - 1) / cfg.GroupSize
	cut := groups / 2
	cfg.Partitions = map[int][]fault.PartitionLink{cut: {{Start: 0, End: 1e12}}}
	fmt.Printf("fleet partition: %d routers in %d groups, group %d's backhaul cut\n",
		cfg.Routers, groups, cut)
	f, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	ctl, err := fleet.NewController(f, rcfg)
	if err != nil {
		return err
	}
	rep, err := ctl.Run()
	if err != nil {
		return err
	}
	printFleetReport(rep)
	if rep.Completed {
		return fmt.Errorf("rollout claims completion with a partitioned group")
	}
	unreachable := 0
	for i := range rep.Routers {
		if rep.Routers[i].State == fleet.StateUnreachable {
			unreachable++
		}
	}
	if want := len(f.Groups[cut].Routers); unreachable != want {
		return fmt.Errorf("%d unreachable routers, want the partitioned group's %d", unreachable, want)
	}

	// Controller restart: serialize, decode, heal the backhaul, resume.
	decoded, err := fleet.UnmarshalFleetReport(rep.Marshal())
	if err != nil {
		return err
	}
	f.Groups[cut].Link.Partitions = nil
	ctl2, err := fleet.NewController(f, rcfg)
	if err != nil {
		return err
	}
	final, err := ctl2.Resume(decoded)
	if err != nil {
		return err
	}
	fmt.Printf("  backhaul healed, resumed from the saved report:\n")
	printFleetReport(final)
	if !final.Completed {
		return fmt.Errorf("resumed rollout did not complete")
	}
	for i := range final.Routers {
		if final.Routers[i].State != fleet.StateCommitted {
			return fmt.Errorf("%s not committed after resume: %s",
				final.Routers[i].ID, final.Routers[i].State)
		}
	}
	return nil
}

// fleetBadWave poisons every router the second full wave commits; the
// health gate must halt the rollout and roll exactly that wave back,
// leaving the canary and wave 1 committed on their rotated parameters.
func fleetBadWave(routers int, seed int64) error {
	cfg, rcfg := fleetDrillConfig(routers, seed)
	fmt.Printf("fleet badwave: %d routers, wave 2 regresses after commit\n", cfg.Routers)
	f, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	initial, _ := f.Routers()[0].LiveParam()
	rcfg.AfterCommit = func(r *fleet.SimRouter, wave int) {
		if wave == 2 {
			poisonFleetRouter(f, r)
		}
	}
	ctl, err := fleet.NewController(f, rcfg)
	if err != nil {
		return err
	}
	rep, err := ctl.Run()
	if !errors.Is(err, fleet.ErrHalted) {
		return fmt.Errorf("regressing wave did not halt the rollout: %v", err)
	}
	printFleetReport(rep)
	if rep.Waves[0] != fleet.WaveCommitted || rep.Waves[1] != fleet.WaveCommitted {
		return fmt.Errorf("canary/wave-1 not committed: %s %s", rep.Waves[0], rep.Waves[1])
	}
	if rep.Waves[2] != fleet.WaveRolledBack {
		return fmt.Errorf("wave 2 status %s, want rolled-back", rep.Waves[2])
	}
	if rep.Waves[3] != fleet.WavePending {
		return fmt.Errorf("wave 3 status %s, want pending", rep.Waves[3])
	}
	for i := range rep.Routers {
		rec := &rep.Routers[i]
		if rec.Wave != 2 {
			continue
		}
		if rec.State != fleet.StateRolledBack {
			return fmt.Errorf("%s (wave 2) state %s, want rolled-back", rec.ID, rec.State)
		}
		if p, _ := f.Router(rec.ID).LiveParam(); p != initial {
			return fmt.Errorf("%s rolled back but parameter %#x != initial %#x", rec.ID, p, initial)
		}
	}
	fmt.Printf("  wave 2 rolled back to the initial image; earlier waves stay committed\n")
	return nil
}

// poisonFleetRouter injects a persistent instruction-store fault into the
// router's live core — the post-commit regression the gate exists to catch.
func poisonFleetRouter(f *fleet.Fleet, r *fleet.SimRouter) {
	c, err := r.NP.Core(0)
	if err != nil {
		panic(fmt.Sprintf("poison %s: %v", r.ID, err))
	}
	inj := fault.New(network.DeriveSeed(f.Seed, "poison-"+r.ID))
	words := c.Program().CodeWords()
	if !inj.Poison(c, words[1].Addr) {
		panic(fmt.Sprintf("poison of %s failed", r.ID))
	}
}
