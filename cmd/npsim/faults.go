package main

import (
	"fmt"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/fault"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/network"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
)

// runFaults drives one (or all) fault-injection scenarios and prints what
// the resilience machinery did about each: detection rate, recovery,
// accounting conservation, and quarantine state. Deterministic per seed.
// Each scenario also asserts its own expected outcome and fails (structured,
// non-zero exit) when the resilience machinery did not hold.
func runFaults(scenario, appName string, cores int, seed int64, col *obs.Collector) error {
	scenarios := map[string]func(string, int, int64, *obs.Collector) error{
		"bitflip":  faultBitflip,
		"hashflip": faultHashflip,
		"hang":     faultHang,
		"spurious": faultSpurious,
		"graph":    faultGraph,
		"link":     faultLink,
	}
	if scenario == "all" {
		for _, name := range []string{"bitflip", "hashflip", "hang", "spurious", "graph", "link"} {
			if err := scenarios[name](appName, cores, seed, col); err != nil {
				return &scenarioError{Mode: "faults", Scenario: name, Err: err}
			}
		}
		return nil
	}
	fn, ok := scenarios[scenario]
	if !ok {
		return fmt.Errorf("unknown fault scenario %q (want bitflip, hashflip, hang, spurious, graph, link, or all)", scenario)
	}
	if err := fn(appName, cores, seed, col); err != nil {
		return &scenarioError{Mode: "faults", Scenario: scenario, Err: err}
	}
	return nil
}

// faultNP builds a supervisor-enabled NP with the app on every core and
// returns it with the serialized bundle for re-installs.
func faultNP(appName string, cores int, param uint32, hasher func(uint32) mhash.Hasher, col *obs.Collector) (*npu.NP, []byte, []byte, error) {
	app, err := apps.ByName(appName)
	if err != nil {
		return nil, nil, nil, err
	}
	prog, err := app.Program()
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := monitor.Extract(prog, mhash.NewMerkle(param))
	if err != nil {
		return nil, nil, nil, err
	}
	np, err := npu.New(npu.Config{
		Cores:           cores,
		MonitorsEnabled: true,
		Supervisor:      npu.DefaultSupervisorConfig(),
		NewHasher:       hasher,
		Obs:             col,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	bin, gb := prog.Serialize(), g.Serialize()
	if err := np.InstallAll(appName, bin, gb, param); err != nil {
		return nil, nil, nil, err
	}
	return np, bin, gb, nil
}

func conservationLine(s npu.Stats) string {
	status := "CONSERVED"
	if !s.Conserved() {
		status = "VIOLATED"
	}
	return fmt.Sprintf("accounting: processed=%d forwarded=%d dropped=%d (alarms=%d faults=%d verdict=%d) — %s",
		s.Processed, s.Forwarded, s.Dropped, s.Alarms, s.Faults, s.VerdictDrops(), status)
}

func faultBitflip(appName string, cores int, seed int64, col *obs.Collector) error {
	const param, trials = 0xB17F, 200
	np, bin, gb, err := faultNP(appName, 1, param, nil, col)
	if err != nil {
		return err
	}
	inj := fault.New(seed)
	gen := packet.NewGenerator(seed)
	detected, faulted, silent, recovered := 0, 0, 0, 0
	for i := 0; i < trials; i++ {
		c, err := np.Core(0)
		if err != nil {
			return err
		}
		inj.FlipCodeBit(c)
		res, err := np.ProcessOn(0, gen.Next(), 0)
		if err != nil {
			return err
		}
		switch {
		case res.Detected:
			detected++
		case res.Faulted:
			faulted++
		default:
			silent++
		}
		// Heal by re-install (also lifts any quarantine into probation),
		// then probe that the core recovered.
		if err := np.InstallAll(appName, bin, gb, param); err != nil {
			return err
		}
		if probe, err := np.ProcessOn(0, gen.Next(), 0); err == nil && !probe.Detected && !probe.Faulted {
			recovered++
		}
	}
	fmt.Printf("[bitflip] %d single-bit instruction-memory flips on %s:\n", trials, appName)
	fmt.Printf("  detected=%d (%.0f%%) arch-faulted=%d silent=%d (unexecuted or 4-bit hash collision)\n",
		detected, 100*float64(detected)/trials, faulted, silent)
	fmt.Printf("  recovered after re-install: %d/%d\n", recovered, trials)
	s := np.Stats()
	fmt.Printf("  %s\n", conservationLine(s))
	if !s.Conserved() {
		return fmt.Errorf("packet accounting violated: %+v", s)
	}
	if recovered != trials {
		return fmt.Errorf("only %d/%d cores recovered after re-install", recovered, trials)
	}
	return nil
}

func faultHashflip(appName string, cores int, seed int64, col *obs.Collector) error {
	const param = 0xFA17
	inj := fault.New(seed)
	var flaky []*fault.FlakyHasher
	np, bin, gb, err := faultNP(appName, 1, param, func(p uint32) mhash.Hasher {
		h := inj.FlakyHasher(mhash.NewMerkle(p), 0)
		flaky = append(flaky, h)
		return h
	}, col)
	if err != nil {
		return err
	}
	// Cold cache, then a hash unit that corrupts every output.
	if err := np.InstallAll(appName, bin, gb, param); err != nil {
		return err
	}
	for _, h := range flaky {
		h.SetRate(1)
	}
	gen := packet.NewGenerator(seed)
	alarms, pkts := 0, 0
	for i := 0; i < 64; i++ {
		if h, _ := np.CoreHealth(0); h == npu.CoreQuarantined {
			break
		}
		res, err := np.ProcessOn(0, gen.Next(), 0)
		if err != nil {
			return err
		}
		pkts++
		if res.Detected {
			alarms++
		}
	}
	health, _ := np.CoreHealth(0)
	fmt.Printf("[hashflip] hash unit corrupting every output on core 0:\n")
	fmt.Printf("  %d alarms in %d packets, core health: %s, available cores: %d/1\n",
		alarms, pkts, health, np.AvailableCores())
	s := np.Stats()
	fmt.Printf("  %s\n", conservationLine(s))
	if health != npu.CoreQuarantined {
		return fmt.Errorf("core not quarantined despite a hash unit corrupting every output (health=%s)", health)
	}
	if !s.Conserved() {
		return fmt.Errorf("packet accounting violated: %+v", s)
	}
	return nil
}

func faultHang(appName string, cores int, seed int64, col *obs.Collector) error {
	np, _, _, err := faultNP(appName, 1, 0x4A46, nil, col)
	if err != nil {
		return err
	}
	c, err := np.Core(0)
	if err != nil {
		return err
	}
	inj := fault.New(seed)
	restore := inj.Hang(c, 8)
	gen := packet.NewGenerator(seed)
	res, err := np.ProcessOn(0, gen.Next(), 0)
	if err != nil {
		return err
	}
	trippedIn := res.Cycles
	restore()
	probe, err := np.ProcessOn(0, gen.Next(), 0)
	if err != nil {
		return err
	}
	s := np.Stats()
	fmt.Printf("[hang] cycle budget shrunk to 8 on core 0:\n")
	fmt.Printf("  watchdog tripped in %d cycles (trips=%d, distinct from alarms=%d)\n",
		trippedIn, s.WatchdogTrips, s.Alarms)
	fmt.Printf("  after budget restore: verdict=%d faulted=%v (core recovered)\n", probe.Verdict, probe.Faulted)
	fmt.Printf("  %s\n", conservationLine(s))
	if s.WatchdogTrips < 1 {
		return fmt.Errorf("watchdog never tripped under an 8-cycle budget: %+v", s)
	}
	if probe.Faulted || probe.Detected {
		return fmt.Errorf("core did not recover after budget restore: %+v", probe)
	}
	if !s.Conserved() {
		return fmt.Errorf("packet accounting violated: %+v", s)
	}
	return nil
}

func faultSpurious(appName string, cores int, seed int64, col *obs.Collector) error {
	np, _, _, err := faultNP(appName, 1, 0x5105, nil, col)
	if err != nil {
		return err
	}
	c, err := np.Core(0)
	if err != nil {
		return err
	}
	inj := fault.New(seed)
	inj.Poison(c, c.Program().Entry)
	res, err := np.ProcessOn(0, packet.NewGenerator(seed).Next(), 0)
	if err != nil {
		return err
	}
	fmt.Printf("[spurious] reserved opcode written over the entry instruction:\n")
	fmt.Printf("  detected=%v faulted=%v verdict=%d (monitor flags the foreign word before the trap)\n",
		res.Detected, res.Faulted, res.Verdict)
	s := np.Stats()
	fmt.Printf("  %s\n", conservationLine(s))
	if !res.Detected && !res.Faulted {
		return fmt.Errorf("poisoned entry instruction neither detected nor trapped: %+v", res)
	}
	if !s.Conserved() {
		return fmt.Errorf("packet accounting violated: %+v", s)
	}
	return nil
}

func faultGraph(appName string, cores int, seed int64, col *obs.Collector) error {
	const param = 0x6F0F
	np, bin, gb, err := faultNP(appName, 1, param, nil, col)
	if err != nil {
		return err
	}
	inj := fault.New(seed)
	rejected := 0
	const trials = 64
	for i := 0; i < trials; i++ {
		bad := inj.CorruptBits(gb, 1+i%8)
		if err := np.InstallAll(appName, bin, bad, param); err != nil {
			rejected++
		}
	}
	fmt.Printf("[graph] monitoring graph corrupted at install (%d trials, 1-8 bit flips):\n", trials)
	fmt.Printf("  rejected by the install self-check: %d/%d\n", rejected, trials)
	// A flip can land in a semantically dead bit of the serialization and
	// decode to an equivalent graph, so 100% rejection is not guaranteed —
	// but the self-check must stop the overwhelming majority.
	if rejected*10 < trials*9 {
		return fmt.Errorf("%d/%d corrupted graphs slipped past the install self-check", trials-rejected, trials)
	}
	return nil
}

func faultLink(appName string, cores int, seed int64, col *obs.Collector) error {
	app, err := apps.ByName(appName)
	if err != nil {
		return err
	}
	mfr, err := core.NewManufacturer("acme", nil)
	if err != nil {
		return err
	}
	op, err := core.NewOperator("isp", nil)
	if err != nil {
		return err
	}
	if err := mfr.Certify(op); err != nil {
		return err
	}
	var devices []*core.Device
	for i := 0; i < 4; i++ {
		d, err := mfr.Manufacture(fmt.Sprintf("router-%d", i), core.DeviceConfig{Cores: cores, MonitorsEnabled: true, Obs: col})
		if err != nil {
			return err
		}
		devices = append(devices, d)
	}
	faults := fault.LinkFaults{DropRate: 0.25, CorruptRate: 0.15, DuplicateRate: 0.05}
	link := network.NewLossyLink(network.GigE(), faults, seed)
	link.Obs = col
	pol := network.DefaultRetryPolicy()
	pol.MaxAttempts = 32
	out, err := network.DistributeReliable(op, devices, app, link, pol, seed)
	if err != nil {
		return err
	}
	fmt.Printf("[link] secure install of %s to 4 routers over %.0f%% drop / %.0f%% corrupt / %.0f%% duplicate:\n",
		appName, 100*faults.DropRate, 100*faults.CorruptRate, 100*faults.DuplicateRate)
	for _, r := range out.Reports {
		status := "installed"
		if r.Err != nil {
			status = r.Err.Error()
		}
		fmt.Printf("  %-10s attempts=%-2d backoff=%5.2fs total=%5.2fs  %s\n",
			r.DeviceID, r.Attempts, r.BackoffSeconds, r.TotalSeconds, status)
	}
	fmt.Printf("  converged=%v succeeded=%d failed=%d total attempts=%d\n",
		out.Converged(), out.Succeeded, out.Failed, out.TotalAttempts)
	if !out.Converged() {
		return fmt.Errorf("fleet did not converge: %d routers failed", out.Failed)
	}
	return nil
}
