package main

// npsim -tenant: the self-asserting two-tenant isolation drill, and the
// tenant_isolation bench sweep folded into -bench. See internal/tenant,
// internal/campaign/tenantdrill.go and EXPERIMENTS.md §E17.

import (
	"fmt"
	"os"

	"sdmmon/internal/campaign"
	"sdmmon/internal/npu"
	"sdmmon/internal/tenant"
)

// runTenantDrill executes the hostile-vs-control tenant isolation drill:
// the gadget and noc families fired at one tenant of a partitioned plane,
// with the bystander tenant's counters required byte-identical to a run
// where the attack never happened. Exits non-zero on any violated
// isolation property.
func runTenantDrill(seed int64) error {
	fmt.Printf("npsim tenant: two-tenant isolation drill (seed %d)\n", seed)
	if err := campaign.TenantIsolationDrill(seed); err != nil {
		return &scenarioError{Mode: "tenant", Scenario: "isolation", Err: err}
	}
	fmt.Println("  victim: gadget detected, cores quarantined, noc flood held at the tenant's admission")
	fmt.Println("  bystander: counters, domain stats and telemetry byte-identical to the no-attack control")
	fmt.Println("npsim tenant: PASS")
	return nil
}

// runBenchTenant refreshes only the tenant_isolation series of an
// existing BENCH document, leaving every other series untouched — the
// same merge discipline as -benchingress.
func runBenchTenant(appName string, packets int, seed int64, out string) error {
	report, err := npu.LoadBenchReport(out)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		report = npu.NewBenchReport(appName, "npsim -benchtenant")
	}
	fmt.Printf("npsim bench-tenant: merging into %s\n", out)
	if err := runTenantSweep(report, packets, seed); err != nil {
		return err
	}
	if err := report.Write(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	for k, p := range report.TenantIsolation {
		if p.MinVsBaseline > 0 {
			fmt.Printf("  isolation %s: min/baseline %.2fx\n", k, p.MinVsBaseline)
		}
	}
	return nil
}

// runTenantSweep measures the per-tenant isolation curve — the slowest
// tenant's throughput as the same silicon is split among 1, 2 and 4
// tenants — and replaces the tenant_isolation series in the report.
func runTenantSweep(report *npu.BenchReport, packets int, seed int64) error {
	fmt.Printf("%-18s %6s %14s %14s %14s\n",
		"tenant isolation", "shards", "min pkts/sec", "agg pkts/sec", "pkts/tenant")
	report.TenantIsolation = make(map[string]npu.TenantIsolationPoint)
	for _, tenants := range []int{1, 2, 4} {
		p, err := tenant.MeasureIsolation(tenant.IsolationConfig{
			Tenants: tenants, Shards: 2, CoresPerTenant: 2,
			PacketsPerTenant: packets / 4, Seed: seed,
		})
		if err != nil {
			return err
		}
		key := fmt.Sprintf("tenants=%d", tenants)
		report.TenantIsolation[key] = npu.TenantIsolationPoint{
			Tenants:          p.Tenants,
			Shards:           p.Shards,
			CoresPerTenant:   p.CoresPerTenant,
			PacketsPerTenant: p.PacketsPerTenant,
			PerTenant:        p.PerTenant,
			MinPktsPerSec:    p.MinPktsPerSec,
			AggPktsPerSec:    p.AggPktsPerSec,
		}
		fmt.Printf("%-18s %6d %14.0f %14.0f %14d\n",
			key, p.Shards, p.MinPktsPerSec, p.AggPktsPerSec, p.PacketsPerTenant)
	}
	return nil
}
