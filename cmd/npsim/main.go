// Command npsim runs the multicore network-processor simulator under
// synthetic traffic with optional interleaved data-plane attacks, and
// reports throughput and detection statistics. It bypasses the secure
// installation path (use cmd/sdmmon for the full lifecycle).
//
//	npsim -app ipv4cm -cores 4 -packets 20000 -attacks 20 -monitors=true
//
// Telemetry: -metrics writes a snapshot of every counter/gauge/histogram on
// exit (Prometheus text for a .prom path, JSON otherwise), -trace writes the
// structured alarm/recovery/install event log as JSON lines, and -pprof
// serves net/http/pprof while the simulation runs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/campaign"
	"sdmmon/internal/fleet"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/obs"
	"sdmmon/internal/packet"
	"sdmmon/internal/shard"
)

func main() {
	appName := flag.String("app", "ipv4cm", "application (see sdmmon apps)")
	cores := flag.Int("cores", 4, "NP cores")
	packets := flag.Int("packets", 10000, "benign packets")
	attacks := flag.Int("attacks", 0, "interleaved attack packets")
	monitors := flag.Bool("monitors", true, "hardware monitors enabled")
	qdepth := flag.Int("qdepth", 0, "simulated output queue depth")
	optWords := flag.Int("optwords", 1, "IP option words in benign traffic")
	seed := flag.Int64("seed", 1, "seed for traffic and hash parameter")
	clockMHz := flag.Float64("clock", 100, "core clock in MHz for throughput reporting")
	forensic := flag.Int("forensic", 0, "forensic trace depth; dumps the instruction trace of the first alarm")
	bench := flag.Bool("bench", false, "run the throughput sweep (1/2/4/8 cores x batch sizes, fast vs reference) and write -benchout")
	benchIngress := flag.Bool("benchingress", false, "re-measure only the ingress hand-off points (ring vs mutex x submitters), merging into an existing -benchout")
	benchTenant := flag.Bool("benchtenant", false, "re-measure only the tenant_isolation series (per-tenant pkts/sec at 1/2/4 tenants), merging into an existing -benchout")
	benchOut := flag.String("benchout", "BENCH_npu.json", "output file for -bench")
	benchPackets := flag.Int("benchpackets", 20000, "packets per sweep point in -bench mode")
	faults := flag.String("faults", "", "fault-injection scenario: bitflip, hashflip, hang, spurious, graph, link, or all")
	rollout := flag.String("rollout", "", "live-upgrade scenario: clean, badcanary, lossy, or all")
	routers := flag.Int("routers", 4, "fleet size for -rollout and -fleet (the fleet drills enforce a minimum of 64)")
	fleetDrill := flag.String("fleet", "", "hierarchical control-plane drill: clean, partition, badwave, or all")
	load := flag.Bool("load", false, "run the sharded traffic plane under overload (see -shards)")
	shards := flag.Int("shards", 4, "line-card shards for -load")
	threatDrill := flag.String("threat", "", "graded threat-response drill: burst, ramp, slowdrip, or all (self-asserting, replayed twice)")
	campaignDrill := flag.String("campaign", "", "adversarial campaign drill: gadget, collision, slowdrip, noc, poison, or all (self-asserting; replayed twice through the wire codec, plus the fleet evasion drill with all)")
	tenantDrill := flag.Bool("tenant", false, "run the self-asserting two-tenant isolation drill (gadget + noc at one tenant; bystander byte-identical to a no-attack control)")
	incidentsOut := flag.String("incidents", "", "write captured incident records as JSON lines (with -threat)")
	metricsOut := &pathFlag{def: "npsim_metrics.json"}
	flag.Var(metricsOut, "metrics", "write a metrics snapshot on exit; bare -metrics selects npsim_metrics.json, -metrics=FILE a path (.prom = Prometheus text, otherwise JSON)")
	traceOut := flag.String("trace", "", "write the structured event trace as JSON lines on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if flag.NArg() > 0 {
		// npsim takes no positional arguments. Rejecting them loudly keeps
		// the pre-bool-or-path `-metrics FILE` spelling from silently
		// writing to the default path while FILE is ignored.
		fmt.Fprintf(os.Stderr, "npsim: unexpected argument %q (path-taking flags use -flag=value, e.g. -metrics=out.json)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	var col *obs.Collector
	if metricsOut.path != "" || *traceOut != "" || *pprofAddr != "" {
		col = obs.New(obs.DefaultRingDepth)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "npsim: pprof:", err)
			}
		}()
	}

	var err error
	switch {
	case *fleetDrill != "":
		err = runFleet(*fleetDrill, *routers, *seed)
	case *rollout != "":
		err = runRollout(*rollout, *routers, *cores, *seed, col)
	case *faults != "":
		err = runFaults(*faults, *appName, *cores, *seed, col)
	case *campaignDrill != "":
		err = runCampaign(*campaignDrill, *seed)
	case *threatDrill != "":
		err = runThreat(*threatDrill, *seed, *incidentsOut)
	case *tenantDrill:
		err = runTenantDrill(*seed)
	case *load:
		err = runLoad(*appName, *shards, *cores, *packets, *seed, *clockMHz, col)
	case *benchIngress:
		err = runBenchIngress(*appName, *seed, *benchOut)
	case *benchTenant:
		err = runBenchTenant(*appName, *benchPackets, *seed, *benchOut)
	case *bench:
		err = runBench(*appName, *benchPackets, *optWords, *seed, *benchOut)
	default:
		err = run(*appName, *cores, *packets, *attacks, *monitors, *qdepth, *optWords, *seed, *clockMHz, *forensic, col)
	}
	// Telemetry is written even when the scenario failed: the snapshot of a
	// failing run is exactly what a post-mortem needs.
	if werr := writeTelemetry(col, metricsOut.path, *traceOut); werr != nil && err == nil {
		err = werr
	}
	if err != nil {
		var se *scenarioError
		if errors.As(err, &se) {
			fmt.Fprintf(os.Stderr, "npsim: FAIL mode=%s scenario=%s: %v\n", se.Mode, se.Scenario, se.Err)
		} else {
			fmt.Fprintln(os.Stderr, "npsim:", err)
		}
		os.Exit(1)
	}
}

// pathFlag is a bool-or-path flag: bare `-metrics` selects the default
// path, `-metrics=FILE` a caller-chosen one. Because the flag package
// treats bool-style flags as value-less, the FILE form must use `=` (a
// space-separated path would be read as a positional argument).
type pathFlag struct {
	path string
	def  string
}

func (f *pathFlag) String() string { return f.path }

func (f *pathFlag) Set(s string) error {
	switch s {
	case "true": // bare -metrics
		f.path = f.def
	case "false": // -metrics=false
		f.path = ""
	default:
		f.path = s
	}
	return nil
}

// IsBoolFlag lets the flag appear with no value.
func (f *pathFlag) IsBoolFlag() bool { return true }

// scenarioError is a structured scenario failure: which mode (faults or
// rollout) and which scenario failed, and why. main renders it as a single
// machine-greppable "npsim: FAIL mode=… scenario=…" line and exits non-zero.
type scenarioError struct {
	Mode     string
	Scenario string
	Err      error
}

func (e *scenarioError) Error() string {
	return fmt.Sprintf("%s scenario %q failed: %v", e.Mode, e.Scenario, e.Err)
}

func (e *scenarioError) Unwrap() error { return e.Err }

// writeTelemetry flushes the collector to the requested output files.
func writeTelemetry(col *obs.Collector, metricsPath, tracePath string) error {
	if col == nil {
		return nil
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		snap := col.Snapshot()
		if strings.HasSuffix(metricsPath, ".prom") {
			err = snap.WritePrometheus(f)
		} else {
			err = snap.WriteJSON(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing metrics to %s: %w", metricsPath, err)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", metricsPath)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		events := col.Events()
		err = obs.WriteTrace(f, events)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("writing trace to %s: %w", tracePath, err)
		}
		dropped := ""
		if n := col.DroppedEvents(); n > 0 {
			dropped = fmt.Sprintf(" (%d dropped at the rings)", n)
		}
		fmt.Printf("wrote %d trace events to %s%s\n", len(events), tracePath, dropped)
	}
	return nil
}

// runBench sweeps core counts and batch sizes over both monitoring paths and
// writes the machine-readable BENCH_npu.json baseline.
func runBench(appName string, packets, optWords int, seed int64, out string) error {
	report := npu.NewBenchReport(appName, "npsim -bench")
	fmt.Printf("npsim bench: %s, %d packets/point, GOMAXPROCS=%d\n",
		report.App, packets, report.GOMAXPROCS)
	fmt.Printf("%-10s %6s %6s %14s %10s %12s %9s\n",
		"path", "cores", "batch", "pkts/sec", "ns/pkt", "simcyc/pkt", "hit-rate")
	for _, reference := range []bool{false, true} {
		for _, cores := range []int{1, 2, 4, 8} {
			for _, batch := range []int{64, 256} {
				p, err := npu.MeasureThroughput(npu.ThroughputConfig{
					App: appName, Cores: cores, Batch: batch, Packets: packets,
					Reference: reference, Seed: seed, OptionWords: optWords,
				})
				if err != nil {
					return err
				}
				report.Add(p)
				fmt.Printf("%-10s %6d %6d %14.0f %10.0f %12.1f %9.3f\n",
					p.Path, p.Cores, p.Batch, p.PktsPerSec, p.NsPerPkt, p.SimCyclesPerPkt, p.HashHitRate)
			}
		}
	}
	// Degraded-mode points: half the cores quarantined, dispatch routing
	// around them — the throughput floor the supervisor guarantees.
	for _, cores := range []int{4, 8} {
		p, err := npu.MeasureThroughput(npu.ThroughputConfig{
			App: appName, Cores: cores, Batch: 256, Packets: packets,
			Seed: seed, OptionWords: optWords, QuarantineCores: cores / 2,
		})
		if err != nil {
			return err
		}
		report.Add(p)
		fmt.Printf("%-10s %6d %6d %14.0f %10.0f %12.1f %9.3f  (%d cores quarantined)\n",
			p.Path, p.Cores, p.Batch, p.PktsPerSec, p.NsPerPkt, p.SimCyclesPerPkt, p.HashHitRate, p.QuarantinedCores)
	}
	// Instrumented points: the same sweep shape at the largest configuration
	// with a live collector attached, quantifying the telemetry overhead.
	for _, cores := range []int{4, 8} {
		p, err := npu.MeasureThroughput(npu.ThroughputConfig{
			App: appName, Cores: cores, Batch: 256, Packets: packets,
			Seed: seed, OptionWords: optWords, Instrumented: true,
		})
		if err != nil {
			return err
		}
		report.Add(p)
		fmt.Printf("%-10s %6d %6d %14.0f %10.0f %12.1f %9.3f  (instrumented)\n",
			p.Path, p.Cores, p.Batch, p.PktsPerSec, p.NsPerPkt, p.SimCyclesPerPkt, p.HashHitRate)
	}
	// Sharded-plane points: the line-card scaling curve of the multi-NP
	// traffic plane. The scaling is stated on the simulated aggregate
	// (virtual time), which a small host can measure faithfully; the wall
	// numbers ride along. See internal/shard.
	fmt.Printf("%-10s %6s %6s %14s %14s %12s\n",
		"path", "shards", "cores", "wall pkts/sec", "sim agg pps", "p99 batch cyc")
	for _, shards := range []int{1, 2, 4, 8} {
		p, err := shard.MeasureThroughput(shard.BenchConfig{
			App: appName, Shards: shards, CoresPerShard: 2, Batch: 256,
			Packets: packets, Flows: 256, Seed: seed,
		})
		if err != nil {
			return err
		}
		report.Add(p)
		fmt.Printf("%-10s %6d %6d %14.0f %14.0f %12d\n",
			p.Path, p.Shards, p.Cores, p.PktsPerSec, p.SimAggPktsPerSec, p.P99BatchCycles)
	}
	// Ingress hand-off points: the lock-free ring + arena against the
	// mutex-queue baseline it replaced, across submitter counts. See
	// internal/shard/ingress.go and EXPERIMENTS.md §E16.
	if err := runIngressSweep(report, seed); err != nil {
		return err
	}
	// Fleet-rollout points: the control plane's makespan curve over fleet
	// size and management-link loss, in virtual link-seconds. See
	// internal/fleet and EXPERIMENTS.md §E14.
	fmt.Printf("%-22s %6s %14s %10s %16s\n",
		"fleet rollout", "groups", "makespan(s)", "attempts", "attempts/router")
	report.FleetRollout = make(map[string]npu.FleetRolloutPoint)
	for _, routers := range []int{100, 300, 1000} {
		for _, drop := range []float64{0, 0.05, 0.15} {
			m, err := fleet.MeasureRollout(routers, drop, seed)
			if err != nil {
				return err
			}
			key := fmt.Sprintf("routers=%d/loss=%.0f%%", m.Routers, m.DropRate*100)
			report.FleetRollout[key] = npu.FleetRolloutPoint{
				Routers:           m.Routers,
				Groups:            m.Groups,
				DropRate:          m.DropRate,
				MakespanSeconds:   m.MakespanSeconds,
				TotalAttempts:     m.TotalAttempts,
				AttemptsPerRouter: m.AttemptsPerRouter,
			}
			fmt.Printf("%-22s %6d %14.2f %10d %16.2f\n",
				key, m.Groups, m.MakespanSeconds, m.TotalAttempts, m.AttemptsPerRouter)
		}
	}
	// Campaign-detection points: packets-to-detection distributions of the
	// adversarial campaign corpus, per family, over a seed sweep. See
	// internal/campaign and EXPERIMENTS.md §E15.
	fmt.Printf("%-22s %8s %10s %10s %14s\n",
		"campaign family", "detected", "p50 pkts", "p99 pkts", "mean evasion")
	report.CampaignDetection = make(map[string]npu.CampaignDetectionPoint)
	for _, family := range campaign.Families() {
		d, err := campaign.MeasureDetection(family, campaignSweepSeeds, seed)
		if err != nil {
			return err
		}
		report.CampaignDetection[family] = npu.CampaignDetectionPoint{
			Family:           d.Family,
			Runs:             d.Runs,
			Detected:         d.Detected,
			P50:              d.P50,
			P99:              d.P99,
			Min:              d.Min,
			Max:              d.Max,
			MeanEvasionDepth: d.MeanEvasionDepth,
		}
		fmt.Printf("%-22s %4d/%-3d %10d %10d %14.1f\n",
			family, d.Detected, d.Runs, d.P50, d.P99, d.MeanEvasionDepth)
	}
	// Tenant-isolation points: the slowest tenant's throughput as the plane
	// is split among 1/2/4 tenants. See internal/tenant and EXPERIMENTS.md
	// §E17.
	if err := runTenantSweep(report, packets, seed); err != nil {
		return err
	}
	if err := report.Write(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	for k, s := range report.SpeedupFastVsReference {
		fmt.Printf("  speedup fast/reference %s: %.2fx\n", k, s)
	}
	for k, o := range report.OverheadInstrumented {
		fmt.Printf("  overhead instrumented/bare %s: %.2f%%\n", k, 100*(o-1))
	}
	for k, s := range report.ShardScaling {
		fmt.Printf("  shard scaling %s: %.2fx\n", k, s)
	}
	for k, s := range report.IngressFast {
		fmt.Printf("  ingress ring/mutex %s: %.2fx\n", k, s)
	}
	return nil
}

// runIngressSweep measures the ingress hand-off — producers feeding one
// consumer — through the mutex-queue baseline and the lock-free ring, at
// 1, 4 and 16 submitters, and adds the points to the report (replacing
// any earlier measurement of the same shape).
func runIngressSweep(report *npu.BenchReport, seed int64) error {
	fmt.Printf("%-14s %10s %14s %10s\n", "ingress", "submitters", "pkts/sec", "ns/pkt")
	for _, mutex := range []bool{true, false} {
		for _, submitters := range []int{1, 4, 16} {
			// Best of three: on a shared host a single hand-off run can
			// lose tens of percent to scheduler luck, and the recorded
			// baseline should be the sustainable rate, not the unluckiest.
			var best npu.BenchPoint
			for rep := 0; rep < 3; rep++ {
				p, err := shard.MeasureIngress(shard.IngressConfig{
					Submitters: submitters,
					Packets:    200000,
					Seed:       seed,
					MutexQueue: mutex,
				})
				if err != nil {
					return err
				}
				if p.PktsPerSec > best.PktsPerSec {
					best = p
				}
			}
			report.Add(best)
			fmt.Printf("%-14s %10d %14.0f %10.1f\n", best.Path, best.Submitters, best.PktsPerSec, best.NsPerPkt)
		}
	}
	return nil
}

// runBenchIngress refreshes only the ingress points of an existing BENCH
// document (or starts a fresh one if none exists), leaving every other
// measured series untouched; Write recomputes the derived ratio maps.
func runBenchIngress(appName string, seed int64, out string) error {
	report, err := npu.LoadBenchReport(out)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		report = npu.NewBenchReport(appName, "npsim -benchingress")
	}
	fmt.Printf("npsim bench-ingress: merging into %s\n", out)
	if err := runIngressSweep(report, seed); err != nil {
		return err
	}
	if err := report.Write(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	for k, s := range report.IngressFast {
		fmt.Printf("  ingress ring/mutex %s: %.2fx\n", k, s)
	}
	return nil
}

func run(appName string, cores, packets, attacks int, monitors bool, qdepth, optWords int, seed int64, clockMHz float64, forensicDepth int, col *obs.Collector) error {
	app, err := apps.ByName(appName)
	if err != nil {
		return err
	}
	prog, err := app.Program()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	param := rng.Uint32()
	h := mhash.NewMerkle(param)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		return err
	}
	np, err := npu.New(npu.Config{Cores: cores, MonitorsEnabled: monitors, TraceDepth: forensicDepth, Obs: col})
	if err != nil {
		return err
	}
	if err := np.InstallAll(appName, prog.Serialize(), g.Serialize(), param); err != nil {
		return err
	}
	fmt.Printf("npsim: %s on %d cores, monitors=%v, graph %d nodes (%d bits)\n",
		appName, cores, monitors, g.Len(), g.MemoryBits())

	gen := packet.NewGenerator(seed)
	gen.OptionWords = optWords

	var atk []byte
	if attacks > 0 {
		smash := attack.DefaultSmash()
		code, err := smash.HijackPayload()
		if err != nil {
			return err
		}
		atk, err = smash.CraftPacket(code)
		if err != nil {
			return err
		}
	}

	total := packets + attacks
	every := 0
	if attacks > 0 {
		every = total / attacks
	}
	hijacked := 0
	attacksSent := 0
	for i := 0; i < total; i++ {
		var pkt []byte
		isAttack := every > 0 && attacksSent < attacks && i%every == every-1
		if isAttack {
			pkt = atk
			attacksSent++
		} else {
			pkt = gen.Next()
		}
		res, err := np.Process(pkt, qdepth)
		if err != nil {
			return err
		}
		if isAttack && attack.Succeeded(apps.PacketResult{Verdict: res.Verdict, Packet: res.Packet}) {
			hijacked++
		}
		if res.Detected && forensicDepth > 0 {
			fmt.Printf("\nALARM on core %d — forensic trace (last %d instructions, !! = alarm):\n%s\n",
				res.Core, forensicDepth, np.TraceDump(res.Core, forensicDepth))
			forensicDepth = 0 // dump the first alarm only
		}
	}

	s := np.Stats()
	fmt.Printf("packets: %d benign + %d attacks\n", packets, attacksSent)
	fmt.Printf("  forwarded=%d dropped=%d alarms=%d faults=%d hijacked=%d\n",
		s.Forwarded, s.Dropped, s.Alarms, s.Faults, hijacked)
	if s.Processed > 0 {
		cpp := float64(s.Cycles) / float64(s.Processed)
		mpps := clockMHz / cpp
		fmt.Printf("  %.0f cycles/packet -> %.2f Mpps/core, %.2f Mpps aggregate at %.0f MHz\n",
			cpp, mpps, mpps*float64(cores), clockMHz)
	}
	for c := 0; c < cores; c++ {
		if checked, alarms, maxPos, err := np.MonitorStats(c); err == nil {
			fmt.Printf("  core %d monitor: %d instructions checked, %d alarms, max %d parallel positions\n",
				c, checked, alarms, maxPos)
		}
	}
	return nil
}
