// Command sdmmon drives the SDMMon lifecycle from the command line with
// persistent state: manufacturer and operator key ceremonies, device
// provisioning, package building, device-side verification/installation,
// and monitored traffic runs.
//
//	sdmmon -dir state init-manufacturer -name acme
//	sdmmon -dir state init-operator -name isp
//	sdmmon -dir state provision -id router-0
//	sdmmon -dir state package -device router-0 -app ipv4cm -out pkg.bin
//	sdmmon -dir state install -device router-0 -pkg pkg.bin
//	sdmmon -dir state run -device router-0 -packets 1000 -attacks 3
//	sdmmon -dir state inspect -pkg pkg.bin
//	sdmmon apps
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	dir := flag.String("dir", "sdmmon-state", "state directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	st := &state{dir: *dir}
	var err error
	switch args[0] {
	case "init-manufacturer":
		err = cmdInitManufacturer(st, args[1:])
	case "init-operator":
		err = cmdInitOperator(st, args[1:])
	case "provision":
		err = cmdProvision(st, args[1:])
	case "package":
		err = cmdPackage(st, args[1:])
	case "install":
		err = cmdInstall(st, args[1:])
	case "run":
		err = cmdRun(st, args[1:])
	case "inspect":
		err = cmdInspect(st, args[1:])
	case "apps":
		err = cmdApps()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdmmon:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sdmmon [-dir state] <command> [flags]

commands:
  init-manufacturer -name N     create the manufacturer root of trust
  init-operator     -name N     create an operator and issue its certificate
  provision         -id ID      manufacture a device (keys + root of trust)
  package           -device ID -app NAME [-out FILE]
                                build the signed, encrypted bundle package
  install           -device ID -pkg FILE
                                device-side verify + install (Table 2 costs)
  run               -device ID [-packets N] [-attacks N] [-qdepth N]
                                run monitored traffic on the installed app
  inspect           -pkg FILE   print package envelope metadata
  apps                          list built-in applications`)
}
