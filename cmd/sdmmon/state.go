package main

import (
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sdmmon/internal/seccrypto"
)

// state persists entities under a directory:
//
//	<dir>/manufacturer.json + manufacturer.key.pem
//	<dir>/operator.json     + operator.key.pem
//	<dir>/devices/<id>.json + <id>.key.pem
//	<dir>/installed/<id>.bundle
type state struct {
	dir string
}

func (s *state) path(parts ...string) string {
	return filepath.Join(append([]string{s.dir}, parts...)...)
}

func (s *state) writeFile(rel string, data []byte, secret bool) error {
	p := s.path(rel)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	mode := os.FileMode(0o644)
	if secret {
		mode = 0o600
	}
	return os.WriteFile(p, data, mode)
}

func (s *state) readFile(rel string) ([]byte, error) {
	return os.ReadFile(s.path(rel))
}

type manufacturerMeta struct {
	Name   string `json:"name"`
	Serial uint64 `json:"next_serial"`
	PubDER string `json:"public_der"`
}

func (s *state) saveManufacturer(m *seccrypto.Manufacturer, serial uint64) error {
	pemBytes, err := m.Keys().MarshalPEM()
	if err != nil {
		return err
	}
	if err := s.writeFile("manufacturer.key.pem", pemBytes, true); err != nil {
		return err
	}
	meta := manufacturerMeta{
		Name:   m.Name,
		Serial: serial,
		PubDER: base64.StdEncoding.EncodeToString(m.PublicDER()),
	}
	j, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return s.writeFile("manufacturer.json", j, false)
}

func (s *state) loadManufacturer() (*seccrypto.Manufacturer, *manufacturerMeta, error) {
	j, err := s.readFile("manufacturer.json")
	if err != nil {
		return nil, nil, fmt.Errorf("no manufacturer (run init-manufacturer): %w", err)
	}
	var meta manufacturerMeta
	if err := json.Unmarshal(j, &meta); err != nil {
		return nil, nil, err
	}
	pemBytes, err := s.readFile("manufacturer.key.pem")
	if err != nil {
		return nil, nil, err
	}
	keys, err := seccrypto.UnmarshalKeyPairPEM(pemBytes)
	if err != nil {
		return nil, nil, err
	}
	return seccrypto.NewManufacturerWithKeys(meta.Name, keys, meta.Serial), &meta, nil
}

type operatorMeta struct {
	Name string `json:"name"`
	Cert string `json:"certificate"`
}

func (s *state) saveOperator(o *seccrypto.Operator) error {
	pemBytes, err := o.Keys().MarshalPEM()
	if err != nil {
		return err
	}
	if err := s.writeFile("operator.key.pem", pemBytes, true); err != nil {
		return err
	}
	meta := operatorMeta{
		Name: o.Name,
		Cert: base64.StdEncoding.EncodeToString(o.Certificate().Marshal()),
	}
	j, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return s.writeFile("operator.json", j, false)
}

func (s *state) loadOperator() (*seccrypto.Operator, error) {
	j, err := s.readFile("operator.json")
	if err != nil {
		return nil, fmt.Errorf("no operator (run init-operator): %w", err)
	}
	var meta operatorMeta
	if err := json.Unmarshal(j, &meta); err != nil {
		return nil, err
	}
	pemBytes, err := s.readFile("operator.key.pem")
	if err != nil {
		return nil, err
	}
	keys, err := seccrypto.UnmarshalKeyPairPEM(pemBytes)
	if err != nil {
		return nil, err
	}
	o := seccrypto.NewOperatorWithKeys(meta.Name, keys)
	certRaw, err := base64.StdEncoding.DecodeString(meta.Cert)
	if err != nil {
		return nil, err
	}
	cert, err := seccrypto.UnmarshalCertificate(certRaw)
	if err != nil {
		return nil, err
	}
	o.SetCertificate(cert)
	return o, nil
}

type deviceMeta struct {
	ID     string `json:"id"`
	MfrDER string `json:"manufacturer_public_der"`
	PubDER string `json:"device_public_der"`
}

func (s *state) saveDevice(d *seccrypto.DeviceIdentity, mfrDER []byte) error {
	pemBytes, err := d.Keys().MarshalPEM()
	if err != nil {
		return err
	}
	if err := s.writeFile(filepath.Join("devices", d.ID+".key.pem"), pemBytes, true); err != nil {
		return err
	}
	meta := deviceMeta{
		ID:     d.ID,
		MfrDER: base64.StdEncoding.EncodeToString(mfrDER),
		PubDER: base64.StdEncoding.EncodeToString(d.PublicInfo().KeyDER),
	}
	j, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return s.writeFile(filepath.Join("devices", d.ID+".json"), j, false)
}

func (s *state) loadDevice(id string) (*seccrypto.DeviceIdentity, error) {
	j, err := s.readFile(filepath.Join("devices", id+".json"))
	if err != nil {
		return nil, fmt.Errorf("no device %q (run provision): %w", id, err)
	}
	var meta deviceMeta
	if err := json.Unmarshal(j, &meta); err != nil {
		return nil, err
	}
	pemBytes, err := s.readFile(filepath.Join("devices", id+".key.pem"))
	if err != nil {
		return nil, err
	}
	keys, err := seccrypto.UnmarshalKeyPairPEM(pemBytes)
	if err != nil {
		return nil, err
	}
	mfrDER, err := base64.StdEncoding.DecodeString(meta.MfrDER)
	if err != nil {
		return nil, err
	}
	return seccrypto.NewDeviceIdentityWithKeys(id, keys, mfrDER)
}

func (s *state) devicePublic(id string) (seccrypto.DevicePublic, error) {
	j, err := s.readFile(filepath.Join("devices", id+".json"))
	if err != nil {
		return seccrypto.DevicePublic{}, fmt.Errorf("no device %q: %w", id, err)
	}
	var meta deviceMeta
	if err := json.Unmarshal(j, &meta); err != nil {
		return seccrypto.DevicePublic{}, err
	}
	der, err := base64.StdEncoding.DecodeString(meta.PubDER)
	if err != nil {
		return seccrypto.DevicePublic{}, err
	}
	return seccrypto.DevicePublic{ID: meta.ID, KeyDER: der}, nil
}

func (s *state) saveBundle(id string, b *seccrypto.Bundle) error {
	return s.writeFile(filepath.Join("installed", id+".bundle"), b.Marshal(), true)
}

func (s *state) loadBundle(id string) (*seccrypto.Bundle, error) {
	raw, err := s.readFile(filepath.Join("installed", id+".bundle"))
	if err != nil {
		return nil, fmt.Errorf("nothing installed on %q (run install): %w", id, err)
	}
	return seccrypto.UnmarshalBundle(raw)
}

// rng is the randomness source for key generation and parameters.
var rng = rand.Reader
