package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The CLI is exercised end to end through its command functions with a
// temporary state directory.
func TestCLILifecycle(t *testing.T) {
	dir := t.TempDir()
	st := &state{dir: filepath.Join(dir, "state")}
	pkgFile := filepath.Join(dir, "pkg.bin")

	if err := cmdInitManufacturer(st, []string{"-name", "acme"}); err != nil {
		t.Fatalf("init-manufacturer: %v", err)
	}
	if err := cmdInitOperator(st, []string{"-name", "isp"}); err != nil {
		t.Fatalf("init-operator: %v", err)
	}
	if err := cmdProvision(st, []string{"-id", "router-0"}); err != nil {
		t.Fatalf("provision: %v", err)
	}
	if err := cmdPackage(st, []string{"-device", "router-0", "-app", "ipv4cm", "-out", pkgFile}); err != nil {
		t.Fatalf("package: %v", err)
	}
	if err := cmdInspect(st, []string{"-pkg", pkgFile}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := cmdInstall(st, []string{"-device", "router-0", "-pkg", pkgFile}); err != nil {
		t.Fatalf("install: %v", err)
	}
	if err := cmdRun(st, []string{"-device", "router-0", "-packets", "200", "-attacks", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := cmdApps(); err != nil {
		t.Fatalf("apps: %v", err)
	}
}

func TestCLICrossDeviceRejected(t *testing.T) {
	dir := t.TempDir()
	st := &state{dir: filepath.Join(dir, "state")}
	pkgFile := filepath.Join(dir, "pkg.bin")
	if err := cmdInitManufacturer(st, nil); err != nil {
		t.Fatal(err)
	}
	if err := cmdInitOperator(st, nil); err != nil {
		t.Fatal(err)
	}
	if err := cmdProvision(st, []string{"-id", "r0"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdProvision(st, []string{"-id", "r1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPackage(st, []string{"-device", "r0", "-out", pkgFile}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInstall(st, []string{"-device", "r1", "-pkg", pkgFile}); err == nil {
		t.Fatal("package for r0 installed on r1")
	}
}

func TestCLITamperedPackageRejected(t *testing.T) {
	dir := t.TempDir()
	st := &state{dir: filepath.Join(dir, "state")}
	pkgFile := filepath.Join(dir, "pkg.bin")
	if err := cmdInitManufacturer(st, nil); err != nil {
		t.Fatal(err)
	}
	if err := cmdInitOperator(st, nil); err != nil {
		t.Fatal(err)
	}
	if err := cmdProvision(st, []string{"-id", "r0"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPackage(st, []string{"-device", "r0", "-out", pkgFile}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(pkgFile)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(pkgFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdInstall(st, []string{"-device", "r0", "-pkg", pkgFile}); err == nil {
		t.Fatal("tampered package installed")
	}
}

func TestCLIMissingState(t *testing.T) {
	st := &state{dir: filepath.Join(t.TempDir(), "empty")}
	if err := cmdInitOperator(st, nil); err == nil {
		t.Error("operator created without manufacturer")
	}
	if err := cmdProvision(st, []string{"-id", "x"}); err == nil {
		t.Error("device provisioned without manufacturer")
	}
	if err := cmdPackage(st, []string{"-device", "x"}); err == nil {
		t.Error("package built without operator")
	}
	if err := cmdRun(st, []string{"-device", "x"}); err == nil {
		t.Error("run without installed bundle")
	}
	if err := cmdProvision(st, nil); err == nil {
		t.Error("provision without -id")
	}
	if err := cmdPackage(st, nil); err == nil {
		t.Error("package without -device")
	}
	if err := cmdInstall(st, nil); err == nil {
		t.Error("install without -device")
	}
	if err := cmdRun(st, nil); err == nil {
		t.Error("run without -device")
	}
	if err := cmdPackage(st, []string{"-device", "x", "-app", "bogus"}); err == nil {
		t.Error("bogus app accepted")
	}
}
