package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"sdmmon/internal/apps"
	"sdmmon/internal/asm"
	"sdmmon/internal/attack"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
	"sdmmon/internal/npu"
	"sdmmon/internal/packet"
	"sdmmon/internal/seccrypto"
	"sdmmon/internal/timing"
)

func cmdInitManufacturer(st *state, args []string) error {
	fs := flag.NewFlagSet("init-manufacturer", flag.ExitOnError)
	name := fs.String("name", "manufacturer", "manufacturer name")
	fs.Parse(args)
	m, err := seccrypto.NewManufacturer(*name, rng)
	if err != nil {
		return err
	}
	if err := st.saveManufacturer(m, 1); err != nil {
		return err
	}
	fmt.Printf("manufacturer %q created (RSA-%d root of trust) in %s\n",
		*name, seccrypto.KeyBits, st.dir)
	return nil
}

func cmdInitOperator(st *state, args []string) error {
	fs := flag.NewFlagSet("init-operator", flag.ExitOnError)
	name := fs.String("name", "operator", "operator name")
	fs.Parse(args)
	mfr, meta, err := st.loadManufacturer()
	if err != nil {
		return err
	}
	op, err := seccrypto.NewOperator(*name, rng)
	if err != nil {
		return err
	}
	cert, err := mfr.IssueCertificate(op)
	if err != nil {
		return err
	}
	op.SetCertificate(cert)
	if err := st.saveOperator(op); err != nil {
		return err
	}
	meta.Serial = cert.Serial + 1
	if err := st.saveManufacturer(mfr, meta.Serial); err != nil {
		return err
	}
	fmt.Printf("operator %q created; certificate serial %d issued by %q\n",
		*name, cert.Serial, mfr.Name)
	return nil
}

func cmdProvision(st *state, args []string) error {
	fs := flag.NewFlagSet("provision", flag.ExitOnError)
	id := fs.String("id", "", "device id")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("provision: -id required")
	}
	mfr, _, err := st.loadManufacturer()
	if err != nil {
		return err
	}
	dev, err := mfr.ProvisionDevice(*id, rng)
	if err != nil {
		return err
	}
	if err := st.saveDevice(dev, mfr.PublicDER()); err != nil {
		return err
	}
	fmt.Printf("device %q provisioned: router key pair + %q root of trust installed\n",
		*id, mfr.Name)
	return nil
}

func cmdPackage(st *state, args []string) error {
	fs := flag.NewFlagSet("package", flag.ExitOnError)
	deviceID := fs.String("device", "", "target device id")
	appName := fs.String("app", "ipv4cm", "application name")
	out := fs.String("out", "pkg.bin", "output package file")
	fs.Parse(args)
	if *deviceID == "" {
		return fmt.Errorf("package: -device required")
	}
	op, err := st.loadOperator()
	if err != nil {
		return err
	}
	devPub, err := st.devicePublic(*deviceID)
	if err != nil {
		return err
	}
	app, err := apps.ByName(*appName)
	if err != nil {
		return err
	}
	prog, err := app.Program()
	if err != nil {
		return err
	}
	var pb [4]byte
	if _, err := io.ReadFull(rng, pb[:]); err != nil {
		return err
	}
	param := binary.BigEndian.Uint32(pb[:])
	h := mhash.NewMerkle(param)
	g, err := monitor.Extract(prog, h)
	if err != nil {
		return err
	}
	bundle := &seccrypto.Bundle{
		Binary:    prog.Serialize(),
		Graph:     g.Serialize(),
		HashParam: param,
	}
	pkg, err := op.BuildPackage(devPub, bundle, rng)
	if err != nil {
		return err
	}
	wire := pkg.Marshal()
	if err := os.WriteFile(*out, wire, 0o644); err != nil {
		return err
	}
	fmt.Printf("package %s for %q: app=%s binary=%dB graph=%dB (%d nodes) wire=%dB\n",
		pkg.DigestHex(), *deviceID, *appName, len(bundle.Binary), len(bundle.Graph), g.Len(), len(wire))
	fmt.Printf("hash parameter: (fresh 32-bit secret, encrypted in package)\n")
	return nil
}

func cmdInstall(st *state, args []string) error {
	fs := flag.NewFlagSet("install", flag.ExitOnError)
	deviceID := fs.String("device", "", "device id")
	pkgFile := fs.String("pkg", "pkg.bin", "package file")
	skipCert := fs.Bool("skip-cert", false, "skip the certificate check (subsequent installs)")
	fs.Parse(args)
	if *deviceID == "" {
		return fmt.Errorf("install: -device required")
	}
	dev, err := st.loadDevice(*deviceID)
	if err != nil {
		return err
	}
	wire, err := os.ReadFile(*pkgFile)
	if err != nil {
		return err
	}
	pkg, err := seccrypto.UnmarshalPackage(wire)
	if err != nil {
		return err
	}
	bundle, ops, err := dev.OpenPackage(pkg, *skipCert)
	if err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	ops.DownloadBytes = len(wire)
	if err := st.saveBundle(*deviceID, bundle); err != nil {
		return err
	}
	model := timing.NiosIIPrototype()
	fmt.Printf("package verified and installed on %q\n", *deviceID)
	fmt.Printf("  crypto work: %d RSA-priv, %d RSA-pub, %d SHA bytes, %d AES bytes\n",
		ops.RSAPrivateOps, ops.RSAPublicOps, ops.SHA256Bytes, ops.AESBytes)
	fmt.Printf("  modeled Nios II time (Table 2 constants): %.2f s\n", model.EstimateOps(ops))
	return nil
}

func cmdRun(st *state, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	deviceID := fs.String("device", "", "device id")
	packets := fs.Int("packets", 1000, "benign packets")
	attacks := fs.Int("attacks", 0, "attack packets interleaved")
	qdepth := fs.Int("qdepth", 0, "simulated output queue depth")
	cores := fs.Int("cores", 1, "NP cores")
	seed := fs.Int64("seed", 1, "traffic seed")
	fs.Parse(args)
	if *deviceID == "" {
		return fmt.Errorf("run: -device required")
	}
	bundle, err := st.loadBundle(*deviceID)
	if err != nil {
		return err
	}
	np, err := npu.New(npu.Config{Cores: *cores, MonitorsEnabled: true})
	if err != nil {
		return err
	}
	if err := np.InstallAll("installed", bundle.Binary, bundle.Graph, bundle.HashParam); err != nil {
		return err
	}
	gen := packet.NewGenerator(*seed)
	gen.OptionWords = 1

	var atkPkt []byte
	if *attacks > 0 {
		smash := attack.DefaultSmash()
		code, err := smash.HijackPayload()
		if err != nil {
			return err
		}
		atkPkt, err = smash.CraftPacket(code)
		if err != nil {
			return err
		}
	}
	sent := 0
	attacksSent := 0
	every := 0
	if *attacks > 0 {
		every = (*packets + *attacks) / (*attacks)
	}
	total := *packets + *attacks
	for sent < total {
		var pkt []byte
		if every > 0 && attacksSent < *attacks && sent%every == every-1 {
			pkt = atkPkt
			attacksSent++
		} else {
			pkt = gen.Next()
		}
		if _, err := np.Process(pkt, *qdepth); err != nil {
			return err
		}
		sent++
	}
	s := np.Stats()
	fmt.Printf("device %q: %d packets (%d attacks)\n", *deviceID, s.Processed, attacksSent)
	fmt.Printf("  forwarded=%d dropped=%d alarms=%d faults=%d\n",
		s.Forwarded, s.Dropped, s.Alarms, s.Faults)
	if s.Processed > 0 {
		cpp := float64(s.Cycles) / float64(s.Processed)
		fmt.Printf("  %.0f cycles/packet -> %.2f Mpps per core at 100 MHz\n",
			cpp, 100.0/cpp)
	}
	return nil
}

func cmdInspect(st *state, args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	pkgFile := fs.String("pkg", "pkg.bin", "package file")
	fs.Parse(args)
	wire, err := os.ReadFile(*pkgFile)
	if err != nil {
		return err
	}
	pkg, err := seccrypto.UnmarshalPackage(wire)
	if err != nil {
		return err
	}
	fmt.Printf("package %s\n", pkg.DigestHex())
	fmt.Printf("  device:      %s\n", pkg.DeviceID)
	fmt.Printf("  operator:    %s (certificate serial %d)\n", pkg.Cert.Subject, pkg.Cert.Serial)
	fmt.Printf("  session key: %d bytes (RSA-OAEP to device)\n", len(pkg.EncKey))
	fmt.Printf("  payload:     %d bytes AES-256-CBC\n", len(pkg.EncPayload))
	fmt.Printf("  signature:   %d bytes (operator, over plaintext)\n", len(pkg.Signature))
	return nil
}

func cmdApps() error {
	for _, a := range apps.All() {
		prog, err := a.Program()
		if err != nil {
			return err
		}
		vuln := ""
		if a.Vulnerable {
			vuln = "  [VULNERABLE option copy]"
		}
		fmt.Printf("%-10s %4d instructions  %s%s\n",
			a.Name, len(prog.CodeWords()), a.Description, vuln)
	}
	return nil
}

// ensure asm import is used (Program types flow through interfaces).
var _ = asm.Deserialize
