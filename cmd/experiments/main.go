// Command experiments regenerates every table and figure of the paper's
// evaluation plus the prose-claim experiments E5–E8. Running it with no
// flags reproduces everything; EXPERIMENTS.md records its output.
//
// Usage:
//
//	experiments [-t1] [-t2] [-t3] [-f6] [-e5] [-e6] [-e7] [-e8]
//	            [-pairs N] [-trials N] [-fleet N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"sdmmon/internal/experiments"
)

func main() {
	t1 := flag.Bool("t1", false, "Table 1: DE4 resource use")
	t2 := flag.Bool("t2", false, "Table 2: security-function timings")
	t3 := flag.Bool("t3", false, "Table 3: hash implementation cost")
	f6 := flag.Bool("f6", false, "Figure 6: hash Hamming distributions")
	e5 := flag.Bool("e5", false, "E5: geometric escape probability")
	e6 := flag.Bool("e6", false, "E6: cascade containment")
	e7 := flag.Bool("e7", false, "E7: security requirements SR1-SR4")
	e8 := flag.Bool("e8", false, "E8: end-to-end detection")
	e9 := flag.Bool("e9", false, "E9: dynamic workload management (extension)")
	e10 := flag.Bool("e10", false, "E10: cost-model sensitivity (extension)")
	e11 := flag.Bool("e11", false, "E11: congestion management under queueing (extension)")
	e12 := flag.Bool("e12", false, "E12: brute-force probe cost (extension)")
	e13 := flag.Bool("e13", false, "E13: resident switching vs secure install (extension)")
	e14 := flag.Bool("e14", false, "E14: fleet rotation rollout makespan (extension)")
	e15 := flag.Bool("e15", false, "E15: adversarial campaign detection latency (extension)")
	pairs := flag.Int("pairs", 3000, "Figure 6 pairs per input distance (paper: 100000 total)")
	trials := flag.Int("trials", 200000, "E5 trials per k")
	fleet := flag.Int("fleet", 32, "E6 fleet size")
	benign := flag.Int("benign", 500, "E8 benign packets")
	attacks := flag.Int("attacks", 200, "E8 attack packets")
	seed := flag.Int64("seed", 1, "experiment seed")
	csv := flag.String("csv", "", "also write the Figure 6 distribution to this CSV file")
	flag.Parse()

	all := !(*t1 || *t2 || *t3 || *f6 || *e5 || *e6 || *e7 || *e8 || *e9 || *e10 || *e11 || *e12 || *e13 || *e14 || *e15)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	section := func(s string) { fmt.Println(s) }

	if all || *t1 {
		s, err := experiments.Table1()
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *t2 {
		s, err := experiments.Table2()
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *t3 {
		s, err := experiments.Table3()
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *f6 {
		section(experiments.Figure6(*pairs, *seed))
		if *csv != "" {
			if err := experiments.Figure6CSV(*csv, *pairs, *seed); err != nil {
				fail(err)
			}
			fmt.Fprintln(os.Stderr, "figure 6 data written to", *csv)
		}
	}
	if all || *e5 {
		section(experiments.E5(*trials, *seed))
	}
	if all || *e6 {
		s, err := experiments.E6(*fleet, *seed)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *e7 {
		s, err := experiments.E7()
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *e8 {
		s, err := experiments.E8(*benign, *attacks, *seed)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *e9 {
		s, err := experiments.E9(4, 600, *seed)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *e10 {
		section(experiments.E10())
	}
	if all || *e11 {
		s, err := experiments.E11(*seed)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *e12 {
		s, err := experiments.E12(10, *seed)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *e13 {
		s, err := experiments.E13(*seed)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *e14 {
		s, err := experiments.E14(*seed)
		if err != nil {
			fail(err)
		}
		section(s)
	}
	if all || *e15 {
		s, err := experiments.E15(*seed)
		if err != nil {
			fail(err)
		}
		section(s)
	}
}
