// Command hwgen emits the hardware artifacts of the flow: structural
// Verilog for the hash units and the monitor comparator, and their
// technology-mapping reports.
//
//	hwgen -unit merkle -o merkle.v
//	hwgen -unit bitcount -report
//	hwgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"sdmmon/internal/netlist"
	"sdmmon/internal/techmap"
)

func main() {
	unit := flag.String("unit", "merkle", "unit: merkle, bitcount, comparator")
	out := flag.String("o", "", "output file (default stdout)")
	registered := flag.Bool("registered", true, "include pipeline registers")
	report := flag.Bool("report", false, "print the techmap report instead of Verilog")
	k := flag.Int("k", 4, "LUT input count for -report")
	chains := flag.Bool("chains", true, "use carry chains for -report (merkle)")
	list := flag.Bool("list", false, "list units")
	flag.Parse()

	if *list {
		fmt.Println("merkle      parameterizable Merkle-tree hash unit (Table 3)")
		fmt.Println("bitcount    popcount baseline hash unit (Table 3)")
		fmt.Println("comparator  4-bit monitor hash comparator")
		return
	}
	if err := run(*unit, *out, *registered, *report, *k, *chains); err != nil {
		fmt.Fprintln(os.Stderr, "hwgen:", err)
		os.Exit(1)
	}
}

func run(unit, out string, registered, report bool, k int, chains bool) error {
	var ckt *netlist.Circuit
	useChains := false
	switch unit {
	case "merkle":
		ckt = netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{Registered: registered})
		useChains = chains
	case "bitcount":
		ckt = netlist.BuildBitcountUnit(netlist.BitcountUnitOptions{Registered: registered})
	case "comparator":
		ckt = netlist.BuildComparator(4)
	default:
		return fmt.Errorf("unknown unit %q", unit)
	}

	if report {
		m, err := techmap.MapNetwork(ckt, techmap.Options{K: k, UseCarryChains: useChains})
		if err != nil {
			return err
		}
		if err := techmap.VerifyMapping(ckt, m, 100, 1); err != nil {
			return fmt.Errorf("post-mapping verification: %w", err)
		}
		fmt.Printf("%s\n", m.Result)
		fmt.Printf("gates: %d logic, %d FFs; mapped LUT count verified against the gate netlist\n",
			ckt.NumGates(), ckt.NumDFFs())
		return nil
	}

	v := ckt.Verilog()
	if out == "" {
		fmt.Print(v)
		return nil
	}
	return os.WriteFile(out, []byte(v), 0o644)
}
