package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunVerilogToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "merkle.v")
	if err := run("merkle", out, true, false, 4, true); err != nil {
		t.Fatal(err)
	}
	v, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(v), "module merkle_hash_unit") {
		t.Error("verilog output malformed")
	}
}

func TestRunReports(t *testing.T) {
	for _, unit := range []string{"merkle", "bitcount", "comparator"} {
		if err := run(unit, "", true, true, 4, true); err != nil {
			t.Fatalf("%s: %v", unit, err)
		}
	}
	if err := run("merkle", "", true, true, 6, false); err != nil {
		t.Fatalf("K=6: %v", err)
	}
}

func TestRunBadUnit(t *testing.T) {
	if err := run("bogus", "", true, false, 4, true); err == nil {
		t.Error("bogus unit accepted")
	}
}
