// Attack detection deep-dive: runs the stack-smashing attack against an
// unmonitored core (full hijack), then against monitored cores over many
// hash parameters, measuring the detection-latency distribution and
// comparing it with the paper's geometric escape-probability argument
// (§2.1: a k-instruction attack survives with probability 16^-k).
//
//	go run ./examples/attack_detection
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/cpu"
	"sdmmon/internal/isa"
	"sdmmon/internal/mhash"
	"sdmmon/internal/monitor"
)

func main() {
	prog, err := apps.IPv4CM().Program()
	if err != nil {
		log.Fatal(err)
	}
	smash := attack.DefaultSmash()
	hijack, err := smash.HijackPayload()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== the vulnerability, unmonitored ==")
	pkt, err := smash.CraftPacket(hijack)
	if err != nil {
		log.Fatal(err)
	}
	res, err := apps.RunApp(apps.IPv4CM(), pkt, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attack packet (IHL=11, options overwrite saved $ra): verdict=%d hijacked=%v\n",
		res.Verdict, attack.Succeeded(res))
	fmt.Printf("the packet's destination was rewritten to the attacker sink: %v\n\n",
		attack.Succeeded(res))

	fmt.Println("== forensic trace of one monitored detection ==")
	{
		h := mhash.NewMerkle(0xF0F0F0F0)
		g, err := monitor.Extract(prog, h)
		if err != nil {
			log.Fatal(err)
		}
		m, err := monitor.New(g, h)
		if err != nil {
			log.Fatal(err)
		}
		core := apps.NewCore(prog)
		tr := cpu.NewTracer(10, m.Observe)
		core.Trace = tr.Observe
		core.Process(pkt, 0)
		fmt.Println("last 10 retired instructions (!! = monitor alarm):")
		fmt.Print(tr.Dump(10))
		fmt.Println()
	}

	fmt.Println("== with the hardware monitor, across 2000 random hash parameters ==")
	rng := rand.New(rand.NewSource(1))
	latency := map[int]int{}
	escaped := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		// Each attacker randomizes their code prefix; each router has its
		// own parameter.
		code := []isa.Word{
			isa.EncodeI(isa.OpORI, isa.RegT6, isa.RegT6, uint16(rng.Uint32())),
			isa.EncodeI(isa.OpXORI, isa.RegT6, isa.RegT6, uint16(rng.Uint32())),
			isa.EncodeI(isa.OpANDI, isa.RegT6, isa.RegT6, uint16(rng.Uint32())),
			isa.EncodeI(isa.OpORI, isa.RegT5, isa.RegT5, uint16(rng.Uint32())),
		}
		code = append(code, hijack...)
		pkt, err := smash.CraftPacket(code)
		if err != nil {
			log.Fatal(err)
		}
		h := mhash.NewMerkle(rng.Uint32())
		g, err := monitor.Extract(prog, h)
		if err != nil {
			log.Fatal(err)
		}
		m, err := monitor.New(g, h)
		if err != nil {
			log.Fatal(err)
		}
		core := apps.NewCore(prog)
		inAttack := 0
		core.Trace = func(pc uint32, w isa.Word) bool {
			if pc >= smash.CodeAddr() {
				inAttack++
			}
			return m.Observe(pc, w)
		}
		out := core.Process(pkt, 0)
		if out.Exc != nil && m.Alarmed() {
			latency[inAttack]++
		} else if attack.Succeeded(out) {
			escaped++
		}
	}
	fmt.Println("attacker instructions retired before the alarm:")
	cum := trials
	for k := 1; k <= 6; k++ {
		if latency[k] == 0 && k > 2 {
			continue
		}
		theory := math.Pow(1.0/16, float64(k-1)) * (15.0 / 16)
		fmt.Printf("  latency %d: %5d attacks (%.4f measured, %.4f geometric theory)\n",
			k, latency[k], float64(latency[k])/trials, theory)
		cum -= latency[k]
	}
	fmt.Printf("escaped entirely: %d/%d (theory for this payload length: ~16^-%d)\n\n",
		escaped, trials, len(hijack)+4)

	fmt.Println("== escape probability vs attack length (E5) ==")
	mk := func(p uint32) mhash.Hasher { return mhash.NewMerkle(p) }
	probs := mhash.EscapeProbability(mk, 3, 100000, rng)
	for k := 1; k <= 3; k++ {
		fmt.Printf("  k=%d: measured %.6f, theory %.6f\n", k, probs[k], math.Pow(16, -float64(k)))
	}
}
