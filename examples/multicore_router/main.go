// Multicore router with dynamic workloads and fleet-scale homogeneity:
// installs different applications per core, reprograms a core at runtime
// (the "Dynamics" requirement), then runs the cascade-containment
// experiment across a fleet — including the reproduction finding that the
// paper's arithmetic-sum compression makes hash-matching attacks
// parameter-independent, and the S-box variant that restores containment.
//
//	go run ./examples/multicore_router
package main

import (
	"fmt"
	"log"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/mhash"
	"sdmmon/internal/network"
	"sdmmon/internal/packet"
)

func main() {
	fmt.Println("== per-core dynamic workloads on one router ==")
	mfr, err := core.NewManufacturer("acme-np", nil)
	if err != nil {
		log.Fatal(err)
	}
	op, err := core.NewOperator("isp", nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := mfr.Certify(op); err != nil {
		log.Fatal(err)
	}
	dev, err := mfr.Manufacture("edge-router", core.DeviceConfig{Cores: 3, MonitorsEnabled: true})
	if err != nil {
		log.Fatal(err)
	}
	for i, app := range []string{"ipv4cm", "udpecho", "counter"} {
		a, err := apps.ByName(app)
		if err != nil {
			log.Fatal(err)
		}
		wire, err := op.ProgramWire(dev.Public(), a)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := dev.InstallOn(wire, i); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("core %d <- %s\n", i, app)
	}
	gen := packet.NewGenerator(3)
	for i := 0; i < 300; i++ {
		if _, err := dev.Process(gen.Next(), 0); err != nil {
			log.Fatal(err)
		}
	}
	s := dev.Stats()
	fmt.Printf("mixed workload: %d packets, %d forwarded, %d alarms\n", s.Processed, s.Forwarded, s.Alarms)

	// Runtime reprogramming: traffic shifted, core 2 switches from the
	// counter to another IPv4 pipeline — with a fresh hash parameter.
	a, err := apps.ByName("ipv4safe")
	if err != nil {
		log.Fatal(err)
	}
	wire, err := op.ProgramWire(dev.Public(), a)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dev.InstallOn(wire, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("core 2 reprogrammed to ipv4safe at runtime (fresh parameter, no reboot)")
	for i := 0; i < 100; i++ {
		if _, err := dev.Process(gen.Next(), 0); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after reprogramming: %d packets, %d alarms\n\n",
		dev.Stats().Processed, dev.Stats().Alarms)

	fmt.Println("== resident application library: µs switching (§4.2) ==")
	lib, err := mfr.Manufacture("lib-router", core.DeviceConfig{Cores: 1, MonitorsEnabled: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"ipv4safe", "udpecho"} {
		a, err := apps.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		wire, err := op.ProgramWire(lib.Public(), a)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := lib.InstallResident(wire, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resident install %-9s (full crypto, modeled %.1f s on Nios II)\n",
			name+":", rep.ModelSeconds)
	}
	for _, name := range []string{"ipv4safe", "udpecho", "ipv4safe"} {
		cycles, err := lib.Switch(0, name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("switch core 0 -> %-9s %d cycles (%.2f µs at 100 MHz)\n",
			name+":", cycles, float64(cycles)/100)
	}
	fmt.Println()

	fmt.Println("== fleet homogeneity: one brute-forced attack replayed everywhere ==")
	run := func(name string, diverse bool, compression mhash.Compress) {
		f, err := network.NewFleet(network.FleetConfig{
			Size: 16, DiverseParams: diverse, Compression: compression, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := f.Cascade()
		if err != nil {
			log.Fatal(err)
		}
		if !res.Engineered {
			fmt.Printf("  %-52s attacker found no matching attack for this parameter\n", name)
			return
		}
		fmt.Printf("  %-52s compromised %2d/16, detected on %2d\n",
			name, res.Compromised, res.Detected)
	}
	run("homogeneous parameters (paper's warning case):", false, nil)
	run("diverse parameters, sum compression (paper's fix):", true, nil)
	run("diverse parameters, s-box compression (hardened):", true, mhash.SBoxCompress())
	fmt.Println("\nfinding: the arithmetic-sum tree makes hash equality parameter-independent,")
	fmt.Println("so the paper's diversity only helps once the compression is nonlinear.")
}
