// Quickstart: the complete SDMMon lifecycle in one file — manufacture a
// device, certify an operator, securely install the IPv4+CM application
// with its monitoring graph and hash parameter, forward traffic, and watch
// the hardware monitor catch a data-plane stack-smashing attack.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sdmmon/internal/apps"
	"sdmmon/internal/attack"
	"sdmmon/internal/core"
	"sdmmon/internal/packet"
)

func main() {
	// 1. At manufacturing time: the manufacturer provisions a router with
	//    a key pair and its own public key as root of trust.
	mfr, err := core.NewManufacturer("acme-np", nil)
	if err != nil {
		log.Fatal(err)
	}
	device, err := mfr.Manufacture("router-0", core.DeviceConfig{Cores: 2, MonitorsEnabled: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("manufactured router-0 (2 monitored cores)")

	// 2. At installation time: the operator gets a certificate.
	operator, err := core.NewOperator("backbone-isp", nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := mfr.Certify(operator); err != nil {
		log.Fatal(err)
	}
	fmt.Println("operator certified by manufacturer")

	// 3. At programming time: sign + encrypt the (binary, monitoring
	//    graph, hash parameter) bundle for exactly this router.
	wire, err := operator.ProgramWire(device.Public(), apps.IPv4CM())
	if err != nil {
		log.Fatal(err)
	}
	report, err := device.Install(wire)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed IPv4+CM: %d-byte package, modeled Nios II verification time %.2f s\n",
		report.WireBytes, report.ModelSeconds)

	// 4. Runtime: benign traffic flows, monitored per instruction.
	gen := packet.NewGenerator(7)
	gen.OptionWords = 1
	for i := 0; i < 1000; i++ {
		if _, err := device.Process(gen.Next(), 0); err != nil {
			log.Fatal(err)
		}
	}
	s := device.Stats()
	fmt.Printf("benign run: %d packets, %d forwarded, %d alarms\n",
		s.Processed, s.Forwarded, s.Alarms)

	// 5. The attack: one malformed packet smashes the stack and hijacks
	//    the core — the monitor detects the deviation and resets.
	smash := attack.DefaultSmash()
	code, err := smash.HijackPayload()
	if err != nil {
		log.Fatal(err)
	}
	atk, err := smash.CraftPacket(code)
	if err != nil {
		log.Fatal(err)
	}
	res, err := device.Process(atk, 0)
	if err != nil {
		log.Fatal(err)
	}
	if res.Detected {
		fmt.Println("attack packet: monitor ALARM -> core reset, packet dropped")
	} else {
		fmt.Println("attack packet was NOT detected (unexpected)")
	}

	// 6. Recovery: the core keeps forwarding normally.
	for i := 0; i < 100; i++ {
		if _, err := device.Process(gen.Next(), 0); err != nil {
			log.Fatal(err)
		}
	}
	s = device.Stats()
	fmt.Printf("after recovery: %d packets total, %d forwarded, %d alarms\n",
		s.Processed, s.Forwarded, s.Alarms)
}
