// Secure installation walk-through: shows every cryptographic step of the
// SDMMon protocol (Figure 3) with real RSA-2048/AES-256 operations, the
// Table 2 cost model applied to each step, and the rejection of four
// classes of tampered packages (SR1–SR4).
//
//	go run ./examples/secure_install
package main

import (
	"fmt"
	"log"

	"sdmmon/internal/apps"
	"sdmmon/internal/core"
	"sdmmon/internal/timing"
)

func main() {
	fmt.Println("== key ceremony ==")
	mfr, err := core.NewManufacturer("acme-np", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("manufacturer key pair: RSA-2048 (root of trust K_M)")

	op, err := core.NewOperator("backbone-isp", nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := mfr.Certify(op); err != nil {
		log.Fatal(err)
	}
	fmt.Println("operator key pair: RSA-2048; certificate = sign_KM-(K_O+)")

	cfg := core.DeviceConfig{Cores: 1, MonitorsEnabled: true}
	dev, err := mfr.Manufacture("router-0", cfg)
	if err != nil {
		log.Fatal(err)
	}
	other, err := mfr.Manufacture("router-1", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("router-0, router-1: device key pairs K_R + pinned K_M+")

	fmt.Println("\n== programming time ==")
	wire, err := op.ProgramWire(dev.Public(), apps.IPv4CM())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("package for router-0: %d bytes on the wire\n", len(wire))
	fmt.Println("  payload = binary || monitoring graph || 32-bit hash parameter")
	fmt.Println("  sign_KO-(payload), AES-256-CBC under fresh K_sym, RSA-OAEP(K_sym -> K_R+)")

	fmt.Println("\n== device-side verification (Table 2 steps) ==")
	rep, err := dev.Install(wire)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  certificate checked: %v\n", rep.CertChecked)
	fmt.Printf("  RSA private ops: %d   RSA public ops: %d\n", rep.Ops.RSAPrivateOps, rep.Ops.RSAPublicOps)
	fmt.Printf("  SHA-256 bytes: %d   AES bytes: %d   downloaded: %d\n",
		rep.Ops.SHA256Bytes, rep.Ops.AESBytes, rep.Ops.DownloadBytes)
	fmt.Printf("  modeled control-processor time: %.2f s (prototype measured ~25 s on a 2 MB package)\n",
		rep.ModelSeconds)

	model := timing.NiosIIPrototype()
	fmt.Println("\nTable 2 at prototype package scale:")
	fmt.Print(timing.Render("", model.Table2(timing.PrototypePackageInput())))

	fmt.Println("\n== attack surface of the installation channel ==")
	tests := []struct {
		name string
		mut  func() []byte
	}{
		{"bit flip in encrypted payload", func() []byte {
			w := append([]byte(nil), wire...)
			w[len(w)-40] ^= 1
			return w
		}},
		{"truncated package", func() []byte { return wire[:len(wire)/2] }},
		{"replay to a different router (SR4)", func() []byte { return wire }},
	}
	for i, tc := range tests {
		target := dev
		if i == 2 {
			target = other
		}
		_, err := target.Install(tc.mut())
		if err != nil {
			fmt.Printf("  REJECTED %-38s %v\n", tc.name+":", err)
		} else {
			fmt.Printf("  ACCEPTED %-38s (unexpected!)\n", tc.name+":")
		}
	}

	fmt.Println("\n== second install: certificate check skipped (pinned operator key) ==")
	wire2, err := op.ProgramWire(dev.Public(), apps.UDPEcho())
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := dev.Install(wire2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  certificate checked: %v (RSA public ops now %d)\n",
		rep2.CertChecked, rep2.Ops.RSAPublicOps)
	fmt.Printf("  fresh hash parameter drawn: every programming re-keys the monitor (SR2)\n")
}
