// Hardware flow walk-through: builds the two Table 3 hash units as
// gate-level netlists, proves them bit-exact against the software models,
// technology-maps them onto LUTs (with and without carry chains), verifies
// the mapped network against the gate netlist, emits synthesizable Verilog,
// and assembles the Table 1/Table 3 resource pictures.
//
//	go run ./examples/hardware_flow
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"sdmmon/internal/fpga"
	"sdmmon/internal/mhash"
	"sdmmon/internal/netlist"
	"sdmmon/internal/techmap"
)

func main() {
	fmt.Println("== gate-level construction ==")
	merkle := netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{Registered: true})
	bitcount := netlist.BuildBitcountUnit(netlist.BitcountUnitOptions{Registered: true})
	fmt.Printf("merkle unit:   %4d gates, %2d FFs (15-node sum tree, 8 leaves)\n",
		merkle.NumGates(), merkle.NumDFFs())
	fmt.Printf("bitcount unit: %4d gates, %2d FFs (popcount compressor tree)\n",
		bitcount.NumGates(), bitcount.NumDFFs())

	fmt.Println("\n== bit-exact equivalence vs the software model ==")
	comb := netlist.BuildMerkleUnit(netlist.MerkleUnitOptions{Registered: false})
	sim, err := netlist.NewSimulator(comb)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	mismatches := 0
	const vectors = 5000
	for i := 0; i < vectors; i++ {
		param, instr := rng.Uint32(), rng.Uint32()
		sim.SetBus("param", uint64(param))
		sim.SetBus("instr", uint64(instr))
		sim.Eval()
		got, _ := sim.Bus("hash")
		if uint8(got) != mhash.NewMerkle(param).Hash(instr) {
			mismatches++
		}
	}
	fmt.Printf("%d random vectors, %d mismatches\n", vectors, mismatches)

	fmt.Println("\n== technology mapping (4-LUT fabric) ==")
	for _, tc := range []struct {
		name   string
		ckt    *netlist.Circuit
		chains bool
	}{
		{"merkle + carry chains", merkle, true},
		{"merkle, generic LUTs ", merkle, false},
		{"bitcount, generic    ", bitcount, false},
	} {
		m, err := techmap.MapNetwork(tc.ckt, techmap.Options{K: 4, UseCarryChains: tc.chains})
		if err != nil {
			log.Fatal(err)
		}
		if err := techmap.VerifyMapping(tc.ckt, m, 200, 2); err != nil {
			log.Fatalf("%s: post-mapping verification failed: %v", tc.name, err)
		}
		fmt.Printf("%s: %3d ALUTs (%d generic + %d carry), depth %d — mapping VERIFIED\n",
			tc.name, m.Result.TotalALUTs(), m.Result.LUTs, m.Result.CarryALUTs, m.Result.Depth)
	}

	fmt.Println("\n== Verilog hand-off ==")
	v := merkle.Verilog()
	fmt.Printf("merkle unit RTL: %d lines; header:\n", strings.Count(v, "\n"))
	for _, line := range strings.SplitN(v, "\n", 9)[:8] {
		fmt.Println("  " + line)
	}

	fmt.Println("\n== resource tables ==")
	t3, err := fpga.Table3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fpga.RenderRows("Table 3 (live mapping vs paper)", t3))
	t1, err := fpga.Table1(fpga.DefaultMonitorConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fpga.RenderRows("\nTable 1 (macro model vs paper)", t1))
	np, err := fpga.NPCoreWithMonitor(fpga.DefaultMonitorConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNP core breakdown:")
	fmt.Print(np.Report())
}
